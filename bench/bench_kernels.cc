// EXP-KERN — google-benchmark microbenchmarks of the hot kernels behind
// every number in §4.2: the interpreted CSR column-to-row access
// (PotentialDelta), the compiled per-variable kernel streams
// (PotentialDeltaCompiled), single-variable Gibbs steps, full sweeps at
// several densities, the grounding join, and the mean-field update.
//
// After the google-benchmark run, main() performs a head-to-head
// interpreted-vs-compiled comparison on an ads/spouse-scale graph and
// writes BENCH_kernels.json (consumed by EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "inference/gibbs.h"
#include "inference/meanfield.h"
#include "query/evaluator.h"
#include "storage/catalog.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dd {
namespace {

void BM_PotentialDelta(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = 10000;
  options.factors_per_variable = state.range(0);
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  std::vector<uint8_t> assignment(graph.num_variables(), 0);
  Rng rng(2);
  for (auto& a : assignment) a = rng.NextBernoulli(0.5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.PotentialDelta(v, assignment.data()));
    v = (v + 1) % graph.num_variables();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PotentialDelta)->Arg(1)->Arg(4)->Arg(16);

void BM_PotentialDeltaCompiled(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = 10000;
  options.factors_per_variable = state.range(0);
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  std::vector<uint8_t> assignment(graph.num_variables(), 0);
  Rng rng(2);
  for (auto& a : assignment) a = rng.NextBernoulli(0.5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.PotentialDeltaCompiled(v, assignment.data()));
    v = (v + 1) % graph.num_variables();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PotentialDeltaCompiled)->Arg(1)->Arg(4)->Arg(16);

void BM_GibbsSweep(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = state.range(0);
  options.factors_per_variable = 3.0;
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  GibbsOptions gibbs_options;
  gibbs_options.use_compiled = false;
  GibbsSampler sampler(&graph, gibbs_options);
  if (!sampler.Init().ok()) state.SkipWithError("init failed");
  for (auto _ : state) {
    sampler.Sweep();
  }
  state.SetItemsProcessed(state.iterations() * options.num_variables);
}
BENCHMARK(BM_GibbsSweep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_GibbsSweepCompiled(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = state.range(0);
  options.factors_per_variable = 3.0;
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  GibbsOptions gibbs_options;
  gibbs_options.use_compiled = true;
  GibbsSampler sampler(&graph, gibbs_options);
  if (!sampler.Init().ok()) state.SkipWithError("init failed");
  for (auto _ : state) {
    sampler.Sweep();
  }
  state.SetItemsProcessed(state.iterations() * options.num_variables);
}
BENCHMARK(BM_GibbsSweepCompiled)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MeanFieldUpdateRound(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = state.range(0);
  options.factors_per_variable = 2.0;
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  MeanFieldOptions mf_options;
  mf_options.max_iterations = 1;  // one relaxation round per timing unit
  for (auto _ : state) {
    MeanFieldEngine engine(&graph, mf_options);
    auto result = engine.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * options.num_variables);
}
BENCHMARK(BM_MeanFieldUpdateRound)->Arg(1000)->Arg(10000);

void BM_GroundingJoin(benchmark::State& state) {
  // R(x, y) |><| S(y, z) with |R| = |S| = range(0).
  Catalog catalog;
  Schema two({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Table* r = *catalog.CreateTable("R", two);
  Table* s = *catalog.CreateTable("S", two);
  Rng rng(3);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)r->Insert(Tuple({Value::Int(i), Value::Int(rng.NextInt(0, n / 4))}));
    (void)s->Insert(Tuple({Value::Int(rng.NextInt(0, n / 4)), Value::Int(i)}));
  }
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x"), Term::Var("z")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.body.push_back({"S", {Term::Var("y"), Term::Var("z")}, false});
  RuleEvaluator evaluator(&catalog);
  for (auto _ : state) {
    size_t count = 0;
    auto status = evaluator.Evaluate(rule, [&](const Tuple&) { ++count; });
    benchmark::DoNotOptimize(count);
    if (!status.ok()) state.SkipWithError("evaluate failed");
  }
}
BENCHMARK(BM_GroundingJoin)->Arg(1000)->Arg(10000);

void BM_SigmoidSample(benchmark::State& state) {
  Rng rng(4);
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBernoulli(Sigmoid(x)));
    x += 0.001;
    if (x > 4.0) x = -4.0;
  }
}
BENCHMARK(BM_SigmoidSample);

/// Head-to-head interpreted-vs-compiled sweep over an ads/spouse-scale
/// random graph (the shape §6's grounded applications produce), written
/// to BENCH_kernels.json. Both paths visit every variable in the same
/// order against the same frozen assignment, so the comparison isolates
/// the delta kernel itself.
/// Env override with a default, for CI smoke sizing (DD_BENCH_VARS,
/// DD_BENCH_SWEEPS). Keeping the defaults means the committed baseline
/// numbers stay comparable run to run.
int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

void RunHeadToHead() {
  SyntheticGraphOptions options;
  options.num_variables = EnvInt("DD_BENCH_VARS", 100000);
  options.factors_per_variable = 3.0;
  options.seed = 7;
  FactorGraph graph = MakeRandomGraph(options);
  const size_t nv = graph.num_variables();

  std::vector<uint8_t> assignment(nv);
  Rng rng(11);
  for (auto& a : assignment) a = rng.NextBernoulli(0.5);

  const int sweeps = EnvInt("DD_BENCH_SWEEPS", 20);
  volatile double sink = 0.0;
  bool agree = true;

  // Warm both paths once (page in the CSR arrays and the streams) and
  // verify bit-for-bit agreement on the full graph.
  for (uint32_t v = 0; v < nv; ++v) {
    const double a = graph.PotentialDelta(v, assignment.data());
    const double b = graph.PotentialDeltaCompiled(v, assignment.data());
    if (std::memcmp(&a, &b, sizeof(a)) != 0) agree = false;
  }

  Stopwatch interpreted_clock;
  for (int s = 0; s < sweeps; ++s) {
    for (uint32_t v = 0; v < nv; ++v) {
      sink += graph.PotentialDelta(v, assignment.data());
    }
  }
  const double interpreted_s = interpreted_clock.Seconds();

  Stopwatch compiled_clock;
  for (int s = 0; s < sweeps; ++s) {
    for (uint32_t v = 0; v < nv; ++v) {
      sink += graph.PotentialDeltaCompiled(v, assignment.data());
    }
  }
  const double compiled_s = compiled_clock.Seconds();

  const double deltas = static_cast<double>(sweeps) * nv;
  const double interpreted_ns = interpreted_s * 1e9 / deltas;
  const double compiled_ns = compiled_s * 1e9 / deltas;
  const double speedup = interpreted_ns / compiled_ns;

  std::printf("\n=== head-to-head: interpreted CSR vs compiled streams ===\n");
  std::printf("graph: %zu vars, %zu factors, %zu edges, %zu stream words\n", nv,
              graph.num_factors(), graph.num_edges(), graph.kernel_stream_words());
  std::printf("interpreted: %.1f ns/delta   compiled: %.1f ns/delta   "
              "speedup: %.2fx   agree: %s\n",
              interpreted_ns, compiled_ns, speedup, agree ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_kernels.json", "w");
  if (out) {
    std::fprintf(out,
                 "{\n"
                 "  \"experiment\": \"EXP-KERN head-to-head\",\n"
                 "  \"graph\": {\n"
                 "    \"num_variables\": %zu,\n"
                 "    \"num_factors\": %zu,\n"
                 "    \"num_edges\": %zu,\n"
                 "    \"kernel_stream_words\": %zu\n"
                 "  },\n"
                 "  \"sweeps\": %d,\n"
                 "  \"interpreted_ns_per_delta\": %.2f,\n"
                 "  \"compiled_ns_per_delta\": %.2f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"deltas_agree\": %s\n"
                 "}\n",
                 nv, graph.num_factors(), graph.num_edges(),
                 graph.kernel_stream_words(), sweeps, interpreted_ns, compiled_ns,
                 speedup, agree ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_kernels.json\n");
  }
  (void)sink;
}

}  // namespace
}  // namespace dd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dd::RunHeadToHead();
  return 0;
}
