// EXP-KERN — google-benchmark microbenchmarks of the hot kernels behind
// every number in §4.2: the CSR column-to-row access (PotentialDelta),
// single-variable Gibbs steps, full sweeps at several densities, the
// grounding join, and the mean-field update.

#include <benchmark/benchmark.h>

#include "inference/gibbs.h"
#include "inference/meanfield.h"
#include "query/evaluator.h"
#include "storage/catalog.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"

namespace dd {
namespace {

void BM_PotentialDelta(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = 10000;
  options.factors_per_variable = state.range(0);
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  std::vector<uint8_t> assignment(graph.num_variables(), 0);
  Rng rng(2);
  for (auto& a : assignment) a = rng.NextBernoulli(0.5);
  uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.PotentialDelta(v, assignment.data()));
    v = (v + 1) % graph.num_variables();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PotentialDelta)->Arg(1)->Arg(4)->Arg(16);

void BM_GibbsSweep(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = state.range(0);
  options.factors_per_variable = 3.0;
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  GibbsOptions gibbs_options;
  GibbsSampler sampler(&graph, gibbs_options);
  if (!sampler.Init().ok()) state.SkipWithError("init failed");
  for (auto _ : state) {
    sampler.Sweep();
  }
  state.SetItemsProcessed(state.iterations() * options.num_variables);
}
BENCHMARK(BM_GibbsSweep)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MeanFieldUpdateRound(benchmark::State& state) {
  SyntheticGraphOptions options;
  options.num_variables = state.range(0);
  options.factors_per_variable = 2.0;
  options.seed = 1;
  FactorGraph graph = MakeRandomGraph(options);
  MeanFieldOptions mf_options;
  mf_options.max_iterations = 1;  // one relaxation round per timing unit
  for (auto _ : state) {
    MeanFieldEngine engine(&graph, mf_options);
    auto result = engine.Run();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * options.num_variables);
}
BENCHMARK(BM_MeanFieldUpdateRound)->Arg(1000)->Arg(10000);

void BM_GroundingJoin(benchmark::State& state) {
  // R(x, y) |><| S(y, z) with |R| = |S| = range(0).
  Catalog catalog;
  Schema two({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Table* r = *catalog.CreateTable("R", two);
  Table* s = *catalog.CreateTable("S", two);
  Rng rng(3);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)r->Insert(Tuple({Value::Int(i), Value::Int(rng.NextInt(0, n / 4))}));
    (void)s->Insert(Tuple({Value::Int(rng.NextInt(0, n / 4)), Value::Int(i)}));
  }
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x"), Term::Var("z")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.body.push_back({"S", {Term::Var("y"), Term::Var("z")}, false});
  RuleEvaluator evaluator(&catalog);
  for (auto _ : state) {
    size_t count = 0;
    auto status = evaluator.Evaluate(rule, [&](const Tuple&) { ++count; });
    benchmark::DoNotOptimize(count);
    if (!status.ok()) state.SkipWithError("evaluate failed");
  }
}
BENCHMARK(BM_GroundingJoin)->Arg(1000)->Arg(10000);

void BM_SigmoidSample(benchmark::State& state) {
  Rng rng(4);
  double x = -4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBernoulli(Sigmoid(x)));
    x += 0.001;
    if (x > 4.0) x = -4.0;
  }
}
BENCHMARK(BM_SigmoidSample);

}  // namespace
}  // namespace dd

BENCHMARK_MAIN();
