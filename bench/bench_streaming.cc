// EXP-STREAM — streaming log extraction throughput. The logs-workload
// corpus is ingested through the bounded-memory streaming front end
// (chunker -> bounded queues -> N extraction workers -> ordered merger
// -> catalog tables) at 1/2/4/8 workers; every run's tables must be
// CRC-identical to a sequential batch loop over the same records, and
// the in-flight high-water mark must stay within the byte budget. The
// wall-clock inside Ingest() gives MB/s into relational tables.
//
// Writes BENCH_streaming.json (gated by ci/bench_gate.py: identity and
// budget unconditionally, an absolute single-worker MB/s floor, and the
// core-aware stream_speedup_Nt ratchet). hardware_concurrency is
// recorded so the gate can tell a regression from a small machine.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "ddlog/parser.h"
#include "storage/catalog.h"
#include "storage/tsv.h"
#include "stream/ingester.h"
#include "testdata/corpus_logs.h"
#include "testdata/logs_app.h"
#include "util/crc32c.h"
#include "util/parallel.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

// Per-table CRCs of the serialized (row-id-sensitive) table contents.
std::map<std::string, uint32_t> CatalogCrcs(const dd::Catalog& catalog) {
  std::map<std::string, uint32_t> crcs;
  for (const std::string& name : catalog.TableNames()) {
    std::string tsv = dd::TableToTsv(**catalog.GetTable(name));
    crcs[name] = dd::Crc32c(tsv.data(), tsv.size());
  }
  return crcs;
}

struct RunResult {
  double seconds = 0;
  dd::IngestStats stats;
  std::map<std::string, uint32_t> crcs;
  bool ok = false;
};

RunResult IngestOnce(const std::string& text, const dd::DdlogProgram& program,
                     size_t workers, size_t chunk_bytes, size_t byte_budget) {
  RunResult r;
  dd::StreamOptions options;
  options.chunk_bytes = chunk_bytes;
  options.byte_budget = byte_budget;
  options.num_workers = workers;
  dd::StreamIngester ingester(options, dd::MakeLogsStreamExtractor());
  dd::StringSource source(text);
  dd::Catalog catalog;
  dd::CatalogStreamSink sink(&catalog, &program);
  if (!ingester.Ingest(&source, &sink).ok()) return r;
  r.seconds = ingester.stats().seconds;
  r.stats = ingester.stats();
  r.crcs = CatalogCrcs(catalog);
  r.ok = true;
  return r;
}

}  // namespace

int main() {
  const size_t hw = dd::HardwareThreads();
  const int repeats = EnvInt("DD_BENCH_REPEATS", 3);
  const size_t chunk_bytes =
      static_cast<size_t>(EnvInt("DD_BENCH_STREAM_CHUNK", 64 * 1024));
  const size_t byte_budget =
      static_cast<size_t>(EnvInt("DD_BENCH_STREAM_BUDGET", 4 * 1024 * 1024));
  const std::vector<size_t> worker_counts = {1, 2, 4, 8};

  std::printf("=== EXP-STREAM: streaming log extraction throughput ===\n");
  std::printf("hardware_concurrency: %zu  repeats (best-of): %d\n", hw,
              repeats);

  dd::LogsCorpusOptions corpus_options;
  corpus_options.num_windows = EnvInt("DD_BENCH_STREAM_WINDOWS", 20000);
  corpus_options.seed = 71;
  dd::LogsCorpus corpus = dd::GenerateLogsCorpus(corpus_options);
  const double mb = static_cast<double>(corpus.text.size()) / 1e6;
  std::printf("corpus: %.2f MB, %zu records\n", mb, corpus.lines.size());
  std::printf("chunk_bytes: %zu  byte_budget: %zu\n\n", chunk_bytes,
              byte_budget);

  auto program = dd::ParseDdlog(dd::LogsDdlog());
  if (!program.ok() || !dd::AnalyzeProgram(*program).ok()) {
    std::fprintf(stderr, "logs DDlog failed to parse/analyze\n");
    return 1;
  }

  // Sequential batch oracle: the same extractor over the same records,
  // one at a time, no chunking, no queues, no threads.
  dd::Catalog oracle_catalog;
  dd::StreamExtractor extractor = dd::MakeLogsStreamExtractor();
  {
    uint64_t index = 0;
    size_t start = 0;
    while (start < corpus.text.size()) {
      size_t end = corpus.text.find('\n', start);
      if (end == std::string::npos) end = corpus.text.size();
      dd::StreamRecord record;
      record.index = index++;
      record.line =
          std::string_view(corpus.text.data() + start, end - start);
      dd::TupleEmitter emitter;
      if (!extractor(record, &emitter).ok()) {
        std::fprintf(stderr, "batch oracle extraction failed\n");
        return 1;
      }
      for (const auto& [relation, rows] : emitter.emitted()) {
        const dd::RelationDecl* decl = program->FindDecl(relation);
        if (decl == nullptr) continue;
        auto table = oracle_catalog.GetOrCreateTable(relation, decl->schema);
        if (!table.ok()) return 1;
        for (const dd::Tuple& t : rows) (void)(*table)->Insert(t);
      }
      start = end + 1;
    }
  }
  const std::map<std::string, uint32_t> oracle_crcs =
      CatalogCrcs(oracle_catalog);
  if (oracle_crcs.empty()) {
    std::fprintf(stderr, "batch oracle produced no tables\n");
    return 1;
  }

  std::map<size_t, RunResult> best;
  bool identical = true;
  bool budget_respected = true;
  size_t peak_bytes_max = 0;
  std::printf("%-10s %-12s %-10s %-14s %s\n", "workers", "seconds", "MB/s",
              "peak/budget", "crc-match");
  for (size_t w : worker_counts) {
    RunResult b;
    for (int rep = 0; rep < repeats; ++rep) {
      RunResult r =
          IngestOnce(corpus.text, *program, w, chunk_bytes, byte_budget);
      if (!r.ok) {
        std::fprintf(stderr, "ingest failed at %zu workers\n", w);
        return 1;
      }
      bool match = r.crcs == oracle_crcs;
      identical = identical && match;
      budget_respected =
          budget_respected && r.stats.peak_in_flight_bytes <= byte_budget;
      if (r.stats.peak_in_flight_bytes > peak_bytes_max) {
        peak_bytes_max = r.stats.peak_in_flight_bytes;
      }
      if (rep == 0 || r.seconds < b.seconds) b = r;
    }
    best[w] = b;
    std::printf("%-10zu %-12.4f %-10.1f %8zu/%-5zu %s\n", w, b.seconds,
                mb / b.seconds, b.stats.peak_in_flight_bytes, byte_budget,
                b.crcs == oracle_crcs ? "yes" : "NO");
  }

  auto mbps = [&](size_t w) { return mb / best[w].seconds; };

  FILE* out = std::fopen("BENCH_streaming.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\n"
        "  \"experiment\": \"EXP-STREAM streaming log extraction\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"corpus_bytes\": %zu,\n"
        "  \"corpus_records\": %zu,\n"
        "  \"chunk_bytes\": %zu,\n"
        "  \"byte_budget\": %zu,\n"
        "  \"peak_in_flight_bytes\": %zu,\n"
        "  \"mbps\": {\"t1\": %.2f, \"t2\": %.2f, \"t4\": %.2f, \"t8\": %.2f},\n"
        "  \"streaming_mbps\": %.2f,\n"
        "  \"stream_speedup_2t\": %.3f,\n"
        "  \"stream_speedup_4t\": %.3f,\n"
        "  \"stream_speedup_8t\": %.3f,\n"
        "  \"budget_respected\": %s,\n"
        "  \"tables_identical\": %s\n"
        "}\n",
        hw, repeats, corpus.text.size(), corpus.lines.size(), chunk_bytes,
        byte_budget, peak_bytes_max, mbps(1), mbps(2), mbps(4), mbps(8),
        mbps(1), mbps(2) / mbps(1), mbps(4) / mbps(1), mbps(8) / mbps(1),
        budget_respected ? "true" : "false", identical ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_streaming.json\n");
  }
  if (hw < 2) {
    std::printf(
        "note: this machine has %zu core(s); multi-worker numbers above are\n"
        "oversubscribed and reflect scheduling overhead, not scaling.\n",
        hw);
  }
  return (identical && budget_respected) ? 0 : 2;
}
