// EXP-PAR — morsel-parallel grounding scaling. The same workload is
// grounded end to end (datalog evaluation + evidence scan + factor
// assembly) at 1/2/4/8 worker threads; every parallel run's factor
// graph must be CRC-identical to the serial oracle's, and the wall-clock
// ratio is the speedup the deterministic merge buys. Two workloads: the
// randomized synthetic program family (the differential harness's
// generator, scaled up) and the paper's spouse application grounded from
// extractor output.
//
// Writes BENCH_grounding.json (ratcheted by ci/bench_gate.py). Speedup
// is only meaningful when the machine actually has the cores; the JSON
// records hardware_concurrency so the gate can tell a regression from a
// small machine.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/udf.h"
#include "ddlog/parser.h"
#include "factor/io.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_programs.h"
#include "util/crc32c.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

struct RunResult {
  double seconds = 0;
  uint32_t crc = 0;
  size_t num_variables = 0;
  size_t num_factors = 0;
  bool ok = false;
};

uint32_t GraphCrc(const dd::Grounder& grounder) {
  std::string text = dd::SerializeGraph(grounder.graph());
  return dd::Crc32c(text.data(), text.size());
}

RunResult GroundSynthetic(const dd::SyntheticProgramOptions& sopt, size_t threads) {
  RunResult r;
  auto workload = dd::MakeSyntheticWorkload(sopt);
  if (!workload.ok()) return r;
  dd::Catalog catalog;
  if (!dd::PopulateCatalog(*workload, &catalog).ok()) return r;
  dd::UdfRegistry udfs;
  dd::RegisterBuiltinUdfs(&udfs);
  dd::GroundingOptions gopt;
  gopt.num_threads = threads;
  dd::Grounder grounder(&catalog, &workload->program, &udfs, gopt);
  dd::Stopwatch watch;
  if (!grounder.Initialize().ok()) return r;
  r.seconds = watch.Seconds();
  r.crc = GraphCrc(grounder);
  r.num_variables = grounder.stats().num_variables;
  r.num_factors = grounder.stats().num_factors;
  r.ok = true;
  return r;
}

// Extractor output for the first `num_docs` documents, as insert-ready
// per-relation tuple lists (kept in emission order for determinism).
std::map<std::string, dd::DeltaSet> ExtractSpouseBase(
    const dd::SpouseCorpus& corpus, size_t num_docs, const dd::Extractor& extractor) {
  std::map<std::string, dd::DeltaSet> base;
  for (size_t d = 0; d < num_docs && d < corpus.documents.size(); ++d) {
    dd::Document doc =
        dd::AnnotateDocument(corpus.documents[d].first, corpus.documents[d].second);
    dd::TupleEmitter emitter;
    if (!extractor(doc, &emitter).ok()) continue;
    for (const auto& [relation, tuples] : emitter.emitted()) {
      for (const dd::Tuple& t : tuples) base[relation][t] += 1;
    }
  }
  for (const auto& [a, b] : corpus.kb_married) {
    base["KbMarried"][dd::Tuple({dd::Value::String(a), dd::Value::String(b)})] = 1;
  }
  for (const auto& [a, b] : corpus.kb_siblings) {
    base["KbSiblings"][dd::Tuple({dd::Value::String(a), dd::Value::String(b)})] = 1;
  }
  return base;
}

RunResult GroundSpouse(const dd::DdlogProgram& program,
                       const std::map<std::string, dd::DeltaSet>& base,
                       size_t threads) {
  RunResult r;
  dd::Catalog catalog;
  for (const auto& [relation, delta] : base) {
    const dd::RelationDecl* decl = program.FindDecl(relation);
    if (decl == nullptr) continue;
    auto table = catalog.GetOrCreateTable(relation, decl->schema);
    if (!table.ok()) return r;
    for (const auto& [tuple, count] : delta) {
      if (count > 0) (void)(*table)->Insert(tuple);
    }
  }
  dd::UdfRegistry udfs;
  dd::GroundingOptions gopt;
  gopt.num_threads = threads;
  dd::Grounder grounder(&catalog, &program, &udfs, gopt);
  dd::Stopwatch watch;
  if (!grounder.Initialize().ok()) return r;
  r.seconds = watch.Seconds();
  r.crc = GraphCrc(grounder);
  r.num_variables = grounder.stats().num_variables;
  r.num_factors = grounder.stats().num_factors;
  r.ok = true;
  return r;
}

}  // namespace

int main() {
  const size_t hw = dd::HardwareThreads();
  const int repeats = EnvInt("DD_BENCH_REPEATS", 3);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  std::printf("=== EXP-PAR: morsel-parallel grounding scaling ===\n");
  std::printf("hardware_concurrency: %zu  repeats (best-of): %d\n\n", hw, repeats);

  // --- Synthetic workload (Fig. 2-scale candidate/feature join).
  dd::SyntheticProgramOptions sopt;
  sopt.seed = 7;
  sopt.num_sentences = static_cast<size_t>(EnvInt("DD_BENCH_GROUND_SENTENCES", 1500));
  sopt.num_entities = 60;
  sopt.vocab_size = 200;
  sopt.tokens_per_sentence = 8;
  sopt.max_pairs_per_sentence = 3;

  // --- Spouse workload (the paper's running example, §3/§5).
  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = static_cast<size_t>(EnvInt("DD_BENCH_GROUND_DOCS", 300));
  corpus_options.seed = 51;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  dd::SpouseAppOptions app;
  dd::Extractor extractor = dd::MakeSpouseExtractor(app);
  auto parsed = dd::ParseDdlog(dd::SpouseDdlog(app));
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto spouse_base =
      ExtractSpouseBase(corpus, corpus_options.num_documents, extractor);

  std::map<size_t, RunResult> synthetic, spouse;
  bool identical = true;
  std::printf("%-10s %-16s %-16s %-10s %s\n", "threads", "synthetic(s)",
              "spouse(s)", "speedup", "crc-match");
  for (size_t t : thread_counts) {
    RunResult best_syn, best_sp;
    for (int rep = 0; rep < repeats; ++rep) {
      RunResult syn = GroundSynthetic(sopt, t);
      RunResult sp = GroundSpouse(*parsed, spouse_base, t);
      if (!syn.ok || !sp.ok) {
        std::fprintf(stderr, "grounding failed at %zu threads\n", t);
        return 1;
      }
      if (rep == 0 || syn.seconds < best_syn.seconds) best_syn = syn;
      if (rep == 0 || sp.seconds < best_sp.seconds) best_sp = sp;
    }
    synthetic[t] = best_syn;
    spouse[t] = best_sp;
    bool match = best_syn.crc == synthetic[1].crc && best_sp.crc == spouse[1].crc;
    identical = identical && match;
    std::printf("%-10zu %-16.4f %-16.4f %6.2fx    %s\n", t, best_syn.seconds,
                best_sp.seconds, synthetic[1].seconds / best_syn.seconds,
                match ? "yes" : "NO");
  }

  auto speedup = [&](size_t t) { return synthetic[1].seconds / synthetic[t].seconds; };

  FILE* out = std::fopen("BENCH_grounding.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\n"
        "  \"experiment\": \"EXP-PAR morsel-parallel grounding\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"synthetic\": {\n"
        "    \"num_variables\": %zu,\n"
        "    \"num_factors\": %zu,\n"
        "    \"seconds\": {\"t1\": %.4f, \"t2\": %.4f, \"t4\": %.4f, \"t8\": %.4f}\n"
        "  },\n"
        "  \"spouse\": {\n"
        "    \"num_variables\": %zu,\n"
        "    \"num_factors\": %zu,\n"
        "    \"seconds\": {\"t1\": %.4f, \"t2\": %.4f, \"t4\": %.4f, \"t8\": %.4f}\n"
        "  },\n"
        "  \"speedup_2t\": %.3f,\n"
        "  \"speedup_4t\": %.3f,\n"
        "  \"speedup_8t\": %.3f,\n"
        "  \"graphs_identical\": %s\n"
        "}\n",
        hw, repeats, synthetic[1].num_variables, synthetic[1].num_factors,
        synthetic[1].seconds, synthetic[2].seconds, synthetic[4].seconds,
        synthetic[8].seconds, spouse[1].num_variables, spouse[1].num_factors,
        spouse[1].seconds, spouse[2].seconds, spouse[4].seconds, spouse[8].seconds,
        speedup(2), speedup(4), speedup(8), identical ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_grounding.json\n");
  }
  if (hw < 2) {
    std::printf("note: this machine has %zu core(s); parallel speedups above are\n"
                "oversubscribed and reflect scheduling overhead, not scaling.\n",
                hw);
  }
  return identical ? 0 : 2;
}
