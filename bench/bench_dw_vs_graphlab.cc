// EXP-DW — §4.2: "In standard benchmarks, DimmWitted was 3.7× faster
// than GraphLab's implementation without any application-specific
// optimization."
//
// Both engines here run the *same* Gibbs math over the same CSR factor
// graph; the only difference is the execution model: DimmWitted-style
// lock-free partitioned sweeps (HogwildSampler) vs a GraphLab-style
// edge-consistency engine that locks the variable's whole neighborhood
// per update (LockingSampler). The measured gap therefore isolates the
// synchronization + locality cost the paper attributes the speedup to.
// On a single-core host the contention component shrinks; the lock
// acquisition overhead alone still produces a multi-x gap.

#include <cstdio>

#include "inference/hogwild.h"
#include "testdata/synthetic_graphs.h"
#include "util/timer.h"

int main() {
  std::printf("=== EXP-DW: DimmWitted-style vs GraphLab-style Gibbs ===\n");
  std::printf("%-10s %-9s %-8s %-16s %-16s %s\n", "vars", "factors", "threads",
              "dw steps/sec", "graphlab steps/s", "speedup");

  for (size_t num_vars : {2000, 10000, 50000}) {
    dd::SyntheticGraphOptions graph_options;
    graph_options.num_variables = num_vars;
    graph_options.factors_per_variable = 3.0;
    graph_options.evidence_fraction = 0.1;
    graph_options.seed = 71;
    dd::FactorGraph graph = dd::MakeRandomGraph(graph_options);

    for (int threads : {1, 4}) {
      dd::ParallelGibbsOptions options;
      options.num_threads = threads;
      options.burn_in = 2;
      options.num_samples = num_vars >= 50000 ? 8 : 30;
      options.seed = 5;

      dd::HogwildSampler dw(&graph, options);
      dd::Stopwatch watch;
      auto dw_result = dw.RunMarginals();
      double dw_seconds = watch.Seconds();
      if (!dw_result.ok()) {
        std::fprintf(stderr, "%s\n", dw_result.status().ToString().c_str());
        return 1;
      }
      double dw_rate = dw.num_steps() / dw_seconds;

      dd::LockingSampler graphlab(&graph, options);
      watch.Restart();
      auto gl_result = graphlab.RunMarginals();
      double gl_seconds = watch.Seconds();
      if (!gl_result.ok()) {
        std::fprintf(stderr, "%s\n", gl_result.status().ToString().c_str());
        return 1;
      }
      double gl_rate = graphlab.num_steps() / gl_seconds;

      std::printf("%-10zu %-9zu %-8d %-16.0f %-16.0f %.2fx\n", num_vars,
                  graph.num_factors(), threads, dw_rate, gl_rate,
                  dw_rate / gl_rate);
    }
  }
  std::printf("\npaper shape check: the lock-free engine wins by a multi-x factor\n"
              "(paper: 3.7x on their testbed); the gap widens with threads.\n");
  return 0;
}
