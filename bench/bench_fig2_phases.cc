// EXP FIG2 — Figure 2: per-phase runtime breakdown of a KBC run.
//
// The paper's Figure 2 annotates the TAC-KBP system with the wall-clock
// cost of each phase (candidate generation + feature extraction,
// supervision+grounding, learning and inference). This harness runs the
// spouse application end to end over growing synthetic corpora and
// prints the same breakdown. Expected shape (as in the paper): feature
// extraction and learning/inference dominate; grounding is comparatively
// cheap; all phases scale roughly linearly in corpus size.

#include <cstdio>

#include "core/error_analysis.h"
#include "testdata/spouse_app.h"

int main() {
  std::printf("=== FIG2: phase runtime breakdown (spouse application) ===\n");
  std::printf("%-8s %-10s %-12s %-12s %-12s %-12s %-8s %s\n", "docs", "factors",
              "extract(s)", "ground(s)", "learn(s)", "infer(s)", "total(s)", "F1");

  for (int num_docs : {50, 100, 200, 400, 800}) {
    dd::SpouseCorpusOptions corpus_options;
    corpus_options.num_documents = num_docs;
    corpus_options.num_persons = 60;
    corpus_options.seed = 31;
    dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

    dd::PipelineOptions options;
    options.learn.epochs = 200;
    options.learn.learning_rate = 0.05;
    options.inference.full_burn_in = 200;
    options.inference.num_samples = 800;
    options.threshold = 0.7;
    options.strategy = dd::PipelineOptions::Strategy::kSampling;

    auto pipeline = dd::MakeSpousePipeline(corpus, dd::SpouseAppOptions(), options);
    if (!pipeline.ok()) {
      std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
      return 1;
    }
    dd::Status status = (*pipeline)->Run();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    auto extractions = (*pipeline)->Extractions("MarriedPair");
    auto metrics = dd::Evaluate(*extractions, dd::SpouseTruthTuples(corpus));
    const dd::PhaseTimings& t = (*pipeline)->timings();
    std::printf("%-8d %-10zu %-12.3f %-12.3f %-12.3f %-12.3f %-8.3f %.3f\n",
                num_docs, (*pipeline)->grounding_stats().num_factors,
                t.extraction_seconds, t.grounding_seconds, t.learning_seconds,
                t.inference_seconds, t.total_seconds(), metrics.f1);
  }
  std::printf("\npaper shape check: every phase grows ~linearly with corpus size;\n"
              "learning+inference dominate at scale; quality stays high.\n");
  return 0;
}
