// EXP-NUMA — §4.2: NUMA-aware execution. The paper reports generating
// 1,000 samples over 0.2B variables in 28 minutes on a 4-socket machine,
// "more than 4× faster than a non-NUMA-aware implementation".
//
// The aware engine runs a replica chain per socket (model averaging, no
// cross-socket traffic); the unaware engine shares one chain across all
// sockets. This host is likely not a 4-socket box, so the primary
// reproduction metric is the *cross-node access count* (the quantity
// that costs 2-3x latency on real NUMA interconnects), plus wall-clock
// under a simulated per-remote-access penalty. Accuracy of both engines
// against exact marginals is checked on a small graph so the speed
// comparison is between equally-correct samplers.

#include <cmath>
#include <cstdio>

#include "inference/exact.h"
#include "inference/numa.h"
#include "testdata/synthetic_graphs.h"
#include "util/timer.h"

int main() {
  std::printf("=== EXP-NUMA: NUMA-aware vs unaware Gibbs (4 simulated sockets) ===\n");

  // Accuracy sanity on a small graph (vs exact enumeration).
  {
    dd::SyntheticGraphOptions small;
    small.num_variables = 14;
    small.factors_per_variable = 1.5;
    small.evidence_fraction = 0.0;
    small.seed = 3;
    dd::FactorGraph graph = dd::MakeRandomGraph(small);
    auto exact = dd::ExactMarginals(graph);
    dd::NumaTopology topo;
    topo.num_nodes = 4;
    dd::NumaSampler sampler(&graph, topo, 500, 20000, 17);
    auto aware = sampler.RunAware();
    auto unaware = sampler.RunUnaware();
    double aware_err = 0, unaware_err = 0;
    for (size_t v = 0; v < exact->size(); ++v) {
      aware_err = std::max(aware_err, std::fabs((*exact)[v] - aware->marginals[v]));
      unaware_err =
          std::max(unaware_err, std::fabs((*exact)[v] - unaware->marginals[v]));
    }
    std::printf("accuracy vs exact (14-var graph): aware max|err|=%.3f, "
                "unaware max|err|=%.3f\n\n", aware_err, unaware_err);
  }

  std::printf("%-9s %-10s %-14s %-14s %-12s %-12s %s\n", "vars", "penalty",
              "aware(s)", "unaware(s)", "speedup", "remote/step", "aware remote");
  for (size_t num_vars : {20000, 100000}) {
    dd::SyntheticGraphOptions graph_options;
    graph_options.num_variables = num_vars;
    graph_options.factors_per_variable = 3.0;
    graph_options.evidence_fraction = 0.1;
    graph_options.seed = 9;
    dd::FactorGraph graph = dd::MakeRandomGraph(graph_options);

    // remote_penalty_iters models the interconnect. 0 = this host's flat
    // memory (no NUMA at all); higher values scale the per-remote-access
    // latency toward (and past) the 2-3x remote:local ratio of real
    // 4-socket machines. The aware engine runs MORE total sweeps (it
    // burns in every replica — the statistical-efficiency price of model
    // averaging that §4.2 discusses), so at penalty 0 on flat memory it
    // can even lose; the crossover and the widening gap are the shape
    // under test.
    for (uint64_t penalty :
         {uint64_t{0}, uint64_t{100}, uint64_t{400}, uint64_t{1000}}) {
      dd::NumaTopology topo;
      topo.num_nodes = 4;
      topo.remote_penalty_iters = penalty;
      int samples = num_vars >= 100000 ? 16 : 40;
      dd::NumaSampler sampler(&graph, topo, 2, samples, 23);

      dd::Stopwatch watch;
      auto aware = sampler.RunAware();
      double aware_seconds = watch.Seconds();
      watch.Restart();
      auto unaware = sampler.RunUnaware();
      double unaware_seconds = watch.Seconds();
      if (!aware.ok() || !unaware.ok()) {
        std::fprintf(stderr, "sampler failed\n");
        return 1;
      }
      double remote_per_step =
          static_cast<double>(unaware->remote_accesses) / unaware->steps;
      std::printf("%-9zu %-10llu %-14.3f %-14.3f %-12.2fx %-12.2f %llu\n", num_vars,
                  static_cast<unsigned long long>(penalty), aware_seconds,
                  unaware_seconds, unaware_seconds / aware_seconds, remote_per_step,
                  static_cast<unsigned long long>(aware->remote_accesses));
    }
  }
  std::printf("\npaper shape check: the aware engine does ZERO remote accesses\n"
              "while the unaware one pays ~2.7 per resampling step; the wall-clock\n"
              "gap grows with the interconnect cost and passes 4x at realistic\n"
              "remote:local ratios (paper: >4x on a real 4-socket machine).\n");
  return 0;
}
