// EXP-INC — §4.2 incremental inference: "We conducted an experimental
// evaluation of these two approaches [sampling-based vs variational-
// based materialization] ... sensitive to changes in the size of the
// factor graph, the sparsity of correlations, and the anticipated number
// of future changes. The performance varies by up to two orders of
// magnitude in different points of the space. To automatically choose
// the materialization strategy, we use a simple rule-based optimizer."
//
// We sweep (graph size, density, number of update batches), apply the
// same sequence of small graph deltas under both strategies, and report
// total update work (variable-update operations — the hardware-neutral
// cost both engines share) plus wall-clock. The optimizer's pick is
// printed per point.

#include <cstdio>

#include "inference/incremental.h"
#include "testdata/synthetic_graphs.h"
#include "util/timer.h"

int main() {
  std::printf("=== EXP-INC: sampling vs variational materialization ===\n");
  std::printf("%-8s %-8s %-9s %-14s %-14s %-11s %-12s %s\n", "vars", "density",
              "changes", "sampling work", "variational", "work ratio", "wall ratio",
              "optimizer");

  double min_ratio = 1e300, max_ratio = 0;
  for (size_t num_vars : {2000, 10000}) {
    for (double density : {0.5, 2.0, 8.0}) {
      for (int num_changes : {1, 10, 30}) {
        dd::SyntheticGraphOptions base;
        base.num_variables = num_vars;
        base.factors_per_variable = density;
        base.evidence_fraction = 0.1;
        base.seed = 61;
        dd::FactorGraph base_graph = dd::MakeRandomGraph(base);

        dd::IncrementalOptions options;
        options.full_burn_in = 50;
        options.update_burn_in = 8;
        options.num_samples = 40;
        options.mf_max_iterations = 100;
        options.mf_tolerance = 1e-3;
        options.mf_damping = 0.2;

        uint64_t work[2] = {0, 0};
        double seconds[2] = {0, 0};
        const dd::MaterializationStrategy strategies[2] = {
            dd::MaterializationStrategy::kSampling,
            dd::MaterializationStrategy::kVariational};
        for (int s = 0; s < 2; ++s) {
          dd::IncrementalInference engine(&base_graph, strategies[s], options);
          if (!engine.Materialize().ok()) {
            std::fprintf(stderr, "materialize failed\n");
            return 1;
          }
          // Apply a sequence of versions, each extending the previous one
          // with a sliver of new variables/factors (0.2% of the graph per
          // change) — the shape incremental grounding produces.
          size_t sliver = num_vars / 500 + 1;
          std::vector<dd::FactorGraph> versions;
          std::vector<std::vector<uint32_t>> changed(num_changes);
          versions.reserve(num_changes);
          for (int c = 0; c < num_changes; ++c) {
            const dd::FactorGraph& prev = c == 0 ? base_graph : versions.back();
            versions.push_back(
                dd::ExtendGraph(prev, sliver, 2.0, 200 + c, &changed[c]));
          }
          dd::Stopwatch watch;
          for (int c = 0; c < num_changes; ++c) {
            auto result = engine.Update(&versions[c], changed[c]);
            if (!result.ok()) {
              std::fprintf(stderr, "update failed: %s\n",
                           result.status().ToString().c_str());
              return 1;
            }
            work[s] += engine.last_work_units();
          }
          seconds[s] = watch.Seconds();
        }

        auto pick = dd::ChooseStrategy(num_vars, density * 2.0, num_changes);
        double ratio = static_cast<double>(work[0]) / (work[1] ? work[1] : 1);
        if (ratio < min_ratio) min_ratio = ratio;
        if (ratio > max_ratio) max_ratio = ratio;
        std::printf("%-8zu %-8.1f %-9d %-14llu %-14llu %-11.1fx %-12.1fx %s\n",
                    num_vars, density, num_changes,
                    static_cast<unsigned long long>(work[0]),
                    static_cast<unsigned long long>(work[1]), ratio,
                    seconds[1] > 0 ? seconds[0] / seconds[1] : 0.0,
                    dd::StrategyName(pick));
      }
    }
  }
  std::printf("\nwork ratio (sampling/variational) spans %.1fx .. %.1fx across the\n"
              "space — the paper's \"up to two orders of magnitude\" sensitivity —\n"
              "and the rule-based optimizer picks variational exactly where the\n"
              "localized updates win (large sparse graphs, many changes).\n",
              min_ratio, max_ratio);
  return 0;
}
