// EXP-DIST — sharded multi-process inference via model averaging. Three
// measurements:
//
//  1. Identity: a 1-shard distributed run must be bit-identical to the
//     single-node Learner + GibbsSampler pipeline — same weights, same
//     marginals. The wire protocol, the shard worker, and the
//     coordinator are all in the loop, so any drift is a protocol bug,
//     not sampling noise.
//  2. Inference fidelity: over a fixed (pre-learned) model, 2- and
//     4-shard boundary-exchanged marginals against the single-node
//     chain. Factor replication keeps every owner's Gibbs conditional
//     complete, so the deviation must sit at the sampling noise floor
//     (gated at 0.05 by ci/bench_gate.py). These numbers are
//     deterministic per seed — they do not move across machines.
//  3. Scaling: wall clock of the full learn + infer run at 1/2/4/8
//     shards (thread launch mode), plus the single-node oracle, so the
//     coordination overhead and the shard speedup are both visible.
//     Speedups are only meaningful with real cores behind them;
//     hardware_concurrency is recorded so the gate can tell a
//     regression from a small machine.
//
// Writes BENCH_distributed.json (ratcheted by ci/bench_gate.py).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "testdata/synthetic_graphs.h"
#include "util/timer.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

struct Schedule {
  int epochs = 20;
  double learning_rate = 0.05;
  double decay = 0.99;
  double l2 = 0.01;
  uint64_t learn_seed = 1234;
  int burn_in = 300;
  int num_samples = 6000;
  uint64_t inference_seed = 7;
};

dd::FactorGraph MakeGraph(size_t num_variables) {
  dd::SyntheticGraphOptions options;
  options.num_variables = num_variables;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  options.weight_scale = 0.5;
  options.num_weights = 32;
  options.seed = 17;
  dd::FactorGraph graph = dd::MakeRandomGraph(options);
  if (!graph.Finalize().ok()) {
    std::fprintf(stderr, "graph finalize failed\n");
    std::exit(1);
  }
  return graph;
}

dd::DistributedOptions DistOptions(const Schedule& s, int num_shards) {
  dd::DistributedOptions options;
  options.num_shards = num_shards;
  options.launch = dd::DistLaunchMode::kThreads;
  options.epochs = s.epochs;
  options.learning_rate = s.learning_rate;
  options.decay = s.decay;
  options.l2 = s.l2;
  options.learn_seed = s.learn_seed;
  options.burn_in = s.burn_in;
  options.num_samples = s.num_samples;
  options.inference_seed = s.inference_seed;
  return options;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double max = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max = std::max(max, std::fabs(a[i] - b[i]));
  }
  return max;
}

}  // namespace

int main() {
  const size_t hw = std::thread::hardware_concurrency();
  const int repeats = EnvInt("DD_BENCH_REPEATS", 3);
  const int num_vars = EnvInt("DD_BENCH_VARS", 1200);

  std::printf("=== EXP-DIST: sharded inference via model averaging ===\n");
  std::printf("hardware_concurrency: %zu  repeats (best-of): %d  "
              "variables: %d\n\n", hw, repeats, num_vars);

  Schedule s;
  dd::FactorGraph graph = MakeGraph(static_cast<size_t>(num_vars));

  // --- single-node oracle: learn, then marginals --------------------
  dd::FactorGraph oracle_graph = graph;
  dd::LearnOptions learn;
  learn.epochs = s.epochs;
  learn.learning_rate = s.learning_rate;
  learn.decay = s.decay;
  learn.l2 = s.l2;
  learn.seed = s.learn_seed;
  double single_seconds = 0;
  std::vector<double> oracle_marginals;
  {
    dd::Stopwatch timer;
    if (!dd::Learner(&oracle_graph).Learn(learn).ok()) {
      std::fprintf(stderr, "single-node learning failed\n");
      return 1;
    }
    dd::GibbsOptions gibbs;
    gibbs.burn_in = s.burn_in;
    gibbs.num_samples = s.num_samples;
    gibbs.seed = s.inference_seed;
    gibbs.clamp_evidence = false;
    dd::GibbsSampler sampler(&oracle_graph, gibbs);
    auto marginals = sampler.RunMarginals();
    if (!marginals.ok()) {
      std::fprintf(stderr, "single-node inference failed\n");
      return 1;
    }
    oracle_marginals = *marginals;
    single_seconds = timer.Seconds();
  }

  // --- 1: identity --------------------------------------------------
  bool one_shard_identical = true;
  {
    dd::FactorGraph g = graph;
    auto result = dd::RunDistributed(&g, DistOptions(s, 1));
    if (!result.ok()) {
      std::fprintf(stderr, "1-shard run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    for (uint32_t w = 0; w < oracle_graph.num_weights(); ++w) {
      if (result->weights[w] != oracle_graph.weight_value(w)) {
        one_shard_identical = false;
      }
    }
    if (result->marginals != oracle_marginals) one_shard_identical = false;
  }
  std::printf("1-shard vs single-node: %s\n",
              one_shard_identical ? "bit-identical" : "DIVERGED");

  // --- 2: inference fidelity over the learned model -----------------
  double dev2 = 1.0, dev4 = 1.0;
  uint64_t cut_edges = 0, initial_cut_edges = 0;
  size_t boundary_vars = 0;
  for (int shards : {2, 4}) {
    dd::FactorGraph g = oracle_graph;  // learned weights stand
    dd::DistributedOptions options = DistOptions(s, shards);
    options.epochs = 0;
    auto result = dd::RunDistributed(&g, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%d-shard inference failed: %s\n", shards,
                   result.status().ToString().c_str());
      return 1;
    }
    const double dev = MaxAbsDiff(result->marginals, oracle_marginals);
    if (shards == 2) dev2 = dev;
    if (shards == 4) {
      dev4 = dev;
      cut_edges = result->cut_edges;
      initial_cut_edges = result->initial_cut_edges;
      boundary_vars = result->boundary_vars;
    }
    std::printf("%d-shard inference max |dev| vs single-node: %.4f "
                "(cut %llu/%llu edges, %zu boundary vars)\n",
                shards, dev,
                static_cast<unsigned long long>(result->cut_edges),
                static_cast<unsigned long long>(result->initial_cut_edges),
                result->boundary_vars);
  }

  // --- 3: scaling ----------------------------------------------------
  std::printf("\nfull learn + infer wall clock (thread launch mode)\n");
  std::printf("%-10s %-14s %s\n", "shards", "seconds", "speedup");
  std::vector<std::pair<int, double>> seconds;
  for (int shards : {1, 2, 4, 8}) {
    double best = 0;
    for (int r = 0; r < repeats; ++r) {
      dd::FactorGraph g = graph;
      dd::Stopwatch timer;
      auto result = dd::RunDistributed(&g, DistOptions(s, shards));
      const double elapsed = timer.Seconds();
      if (!result.ok()) {
        std::fprintf(stderr, "%d-shard run failed: %s\n", shards,
                     result.status().ToString().c_str());
        return 1;
      }
      if (r == 0 || elapsed < best) best = elapsed;
    }
    seconds.emplace_back(shards, best);
    std::printf("%-10d %-14.4f %6.2fx\n", shards, best,
                seconds.front().second / best);
  }
  const double t1 = seconds[0].second;
  const double overhead = single_seconds > 0 ? t1 / single_seconds : 0;
  std::printf("single-node (no coordinator): %.4fs -> 1-shard coordination "
              "overhead %.2fx\n", single_seconds, overhead);

  FILE* out = std::fopen("BENCH_distributed.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_distributed.json\n");
    return 1;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"experiment\": \"EXP-DIST sharded inference via model averaging\",\n"
      "  \"hardware_concurrency\": %zu,\n"
      "  \"repeats\": %d,\n"
      "  \"graph\": {\"num_variables\": %zu, \"num_factors\": %zu},\n"
      "  \"partition_4shard\": {\"cut_edges\": %llu, "
      "\"initial_cut_edges\": %llu, \"boundary_vars\": %zu},\n"
      "  \"one_shard_identical\": %s,\n"
      "  \"inference_max_dev_2shard\": %.4f,\n"
      "  \"inference_max_dev_4shard\": %.4f,\n"
      "  \"seconds\": {\"single\": %.4f, \"t1\": %.4f, \"t2\": %.4f, "
      "\"t4\": %.4f, \"t8\": %.4f},\n"
      "  \"coordination_overhead\": %.3f,\n"
      "  \"shard_speedup_2t\": %.3f,\n"
      "  \"shard_speedup_4t\": %.3f,\n"
      "  \"shard_speedup_8t\": %.3f\n"
      "}\n",
      hw, repeats, graph.num_variables(), graph.num_factors(),
      static_cast<unsigned long long>(cut_edges),
      static_cast<unsigned long long>(initial_cut_edges), boundary_vars,
      one_shard_identical ? "true" : "false", dev2, dev4, single_seconds,
      seconds[0].second, seconds[1].second, seconds[2].second,
      seconds[3].second, overhead, t1 / seconds[1].second,
      t1 / seconds[2].second, t1 / seconds[3].second);
  std::fclose(out);
  std::printf("\nwrote BENCH_distributed.json\n");
  if (hw < 8) {
    std::printf("note: this machine has %zu core(s); shard speedups above "
                "its core count\nmeasure oversubscription, not scaling — "
                "the gate knows to only warn.\n", hw);
  }
  return one_shard_identical ? 0 : 1;
}
