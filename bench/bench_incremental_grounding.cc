// EXP-DRED — §4.1: incremental grounding. "We found that the overhead of
// DRed is modest and the gains may be substantial, so DeepDive always
// runs DRed — except on initial load."
//
// The spouse program is grounded once, then update batches of growing
// size (fractions of the corpus worth of new sentences) are applied two
// ways: through DRed delta propagation (Grounder::ApplyDeltas) and by
// full re-evaluation (Grounder::Reground). Expected shape: incremental
// time scales with |delta| and beats full regrounding by a wide margin
// for small updates; the two converge as the update approaches the
// corpus size.

#include <cstdio>
#include <map>

#include "core/udf.h"
#include "ddlog/parser.h"
#include "grounding/grounder.h"
#include "testdata/spouse_app.h"
#include "util/timer.h"

namespace {

// Collect extractor output for a set of documents as base-table deltas.
std::map<std::string, dd::DeltaSet> ExtractDeltas(
    const dd::SpouseCorpus& corpus, size_t begin, size_t end,
    const dd::Extractor& extractor) {
  std::map<std::string, dd::DeltaSet> deltas;
  for (size_t d = begin; d < end && d < corpus.documents.size(); ++d) {
    dd::Document doc =
        dd::AnnotateDocument(corpus.documents[d].first, corpus.documents[d].second);
    dd::TupleEmitter emitter;
    if (!extractor(doc, &emitter).ok()) continue;
    for (const auto& [relation, tuples] : emitter.emitted()) {
      for (const dd::Tuple& t : tuples) deltas[relation][t] += 1;
    }
  }
  return deltas;
}

}  // namespace

int main() {
  std::printf("=== EXP-DRED: incremental (DRed) vs full re-grounding ===\n");

  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 600;
  corpus_options.seed = 51;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  const size_t base_docs = 400;

  dd::SpouseAppOptions app;
  dd::Extractor extractor = dd::MakeSpouseExtractor(app);
  auto parsed = dd::ParseDdlog(dd::SpouseDdlog(app));
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }

  std::printf("%-14s %-10s %-12s %-12s %-10s %-12s %s\n", "update(docs)",
              "dfactors", "dred-eval(s)", "full-eval(s)", "speedup",
              "dred-total", "full-total");

  for (size_t update_docs : {size_t{2}, size_t{10}, size_t{40}, size_t{100},
                             size_t{200}}) {
    // Fresh grounder over the base corpus for each trial.
    dd::Catalog catalog;
    dd::UdfRegistry udfs;
    // Base load.
    {
      auto base = ExtractDeltas(corpus, 0, base_docs, extractor);
      for (const auto& [a, b] : corpus.kb_married) {
        base["KbMarried"][dd::Tuple(
            {dd::Value::String(a), dd::Value::String(b)})] = 1;
      }
      for (const auto& [a, b] : corpus.kb_siblings) {
        base["KbSiblings"][dd::Tuple(
            {dd::Value::String(a), dd::Value::String(b)})] = 1;
      }
      for (const auto& [relation, delta] : base) {
        const dd::RelationDecl* decl = parsed->FindDecl(relation);
        auto table = catalog.GetOrCreateTable(relation, decl->schema);
        for (const auto& [tuple, count] : delta) {
          if (count > 0) (void)(*table)->Insert(tuple);
        }
      }
    }
    dd::Grounder grounder(&catalog, &*parsed, &udfs);
    dd::Status status = grounder.Initialize();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    size_t factors_before = grounder.stats().num_factors;

    auto update = ExtractDeltas(corpus, base_docs, base_docs + update_docs, extractor);

    dd::Stopwatch watch;
    status = grounder.ApplyDeltas(update);
    double dred_total = watch.Seconds();
    if (!status.ok()) {
      std::fprintf(stderr, "dred: %s\n", status.ToString().c_str());
      return 1;
    }
    double dred_eval = grounder.stats().eval_seconds;
    size_t dfactors = grounder.stats().num_factors - factors_before;

    // Full regrounding of the SAME final state (tables already updated).
    watch.Restart();
    status = grounder.Reground();
    double full_total = watch.Seconds();
    if (!status.ok()) {
      std::fprintf(stderr, "reground: %s\n", status.ToString().c_str());
      return 1;
    }
    double full_eval = grounder.stats().eval_seconds;

    // The factor-graph assembly step is common to both paths; DRed's win
    // is on the evaluation (the "SQL") side, which is what the paper's
    // §4.1 claim is about.
    std::printf("%-14zu %-10zu %-12.4f %-12.4f %-10.1fx %-12.4f %.4f\n",
                update_docs, dfactors, dred_eval, full_eval,
                full_eval / dred_eval, dred_total, full_total);
  }
  std::printf("\npaper shape check: DRed cost tracks the delta size, so small\n"
              "updates (the common case in the dev loop) see large gains; the\n"
              "advantage shrinks as the update approaches the corpus size.\n");
  return 0;
}
