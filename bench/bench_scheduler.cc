// EXP-SCHED — task-graph scheduler: parallel recursive strata and phase
// overlap. Two measurements:
//
//  1. Recursive grounding scaling: the synthetic workload's transitive-
//     closure SCC (semi-naive fixpoint, each round morsel-parallel with
//     an ordered barrier merge) grounded at 1/2/4/8 worker threads.
//     Every parallel run's factor graph must be CRC-identical to the
//     serial oracle's.
//  2. Pipeline overlap: the spouse application run end to end with the
//     strictly sequential phase schedule (num_threads = 1) and with the
//     overlapped task-graph schedule (num_threads = 4, learning
//     overlapping the inference warm-up, eval overlapping the factor
//     build). Marginals must be identical; the overlapped wall clock
//     should not exceed the sequential one on a multicore machine.
//
// Writes BENCH_scheduler.json (ratcheted by ci/bench_gate.py). Speedup
// and overlap ratios are only meaningful when the machine actually has
// the cores; hardware_concurrency is recorded so the gate can tell a
// regression from a small machine.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/udf.h"
#include "factor/io.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_programs.h"
#include "util/crc32c.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

struct RunResult {
  double seconds = 0;
  uint32_t crc = 0;
  size_t num_variables = 0;
  size_t num_factors = 0;
  bool ok = false;
};

RunResult GroundRecursive(const dd::SyntheticProgramOptions& sopt, size_t threads) {
  RunResult r;
  auto workload = dd::MakeSyntheticWorkload(sopt);
  if (!workload.ok()) return r;
  dd::Catalog catalog;
  if (!dd::PopulateCatalog(*workload, &catalog).ok()) return r;
  dd::UdfRegistry udfs;
  dd::RegisterBuiltinUdfs(&udfs);
  dd::GroundingOptions gopt;
  gopt.num_threads = threads;
  dd::Grounder grounder(&catalog, &workload->program, &udfs, gopt);
  dd::Stopwatch watch;
  if (!grounder.Initialize().ok()) return r;
  r.seconds = watch.Seconds();
  std::string text = dd::SerializeGraph(grounder.graph());
  r.crc = dd::Crc32c(text.data(), text.size());
  r.num_variables = grounder.stats().num_variables;
  r.num_factors = grounder.stats().num_factors;
  r.ok = true;
  return r;
}

struct PipelineResult {
  double seconds = 0;
  std::vector<double> marginals;
  bool ok = false;
};

PipelineResult RunSpousePipeline(const dd::SpouseCorpus& corpus, size_t threads) {
  PipelineResult r;
  dd::PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 200;
  options.inference.num_samples = 800;
  options.threshold = 0.7;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;
  options.num_threads = threads;
  auto pipeline = dd::MakeSpousePipeline(corpus, dd::SpouseAppOptions(), options);
  if (!pipeline.ok()) return r;
  dd::Stopwatch watch;
  if (!(*pipeline)->Run().ok()) return r;
  r.seconds = watch.Seconds();
  auto marginals = (*pipeline)->Marginals("MarriedPair");
  if (!marginals.ok()) return r;
  for (const auto& [tuple, prob] : *marginals) r.marginals.push_back(prob);
  r.ok = true;
  return r;
}

}  // namespace

int main() {
  const size_t hw = dd::HardwareThreads();
  const int repeats = EnvInt("DD_BENCH_REPEATS", 3);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  std::printf("=== EXP-SCHED: task-graph scheduler ===\n");
  std::printf("hardware_concurrency: %zu  repeats (best-of): %d\n\n", hw, repeats);

  // --- Part 1: recursive strata scaling (transitive-closure SCC).
  dd::SyntheticProgramOptions sopt;
  sopt.seed = 7;
  sopt.recursive = true;
  sopt.num_sentences = static_cast<size_t>(EnvInt("DD_BENCH_SCHED_SENTENCES", 600));
  sopt.num_entities = static_cast<size_t>(EnvInt("DD_BENCH_SCHED_ENTITIES", 50));
  sopt.vocab_size = 150;
  sopt.tokens_per_sentence = 8;
  sopt.max_pairs_per_sentence = 3;

  std::map<size_t, RunResult> recursive;
  bool identical = true;
  std::printf("recursive grounding (semi-naive fixpoint, morsel-parallel rounds)\n");
  std::printf("%-10s %-14s %-10s %s\n", "threads", "seconds", "speedup", "crc-match");
  for (size_t t : thread_counts) {
    RunResult best;
    for (int rep = 0; rep < repeats; ++rep) {
      RunResult run = GroundRecursive(sopt, t);
      if (!run.ok) {
        std::fprintf(stderr, "recursive grounding failed at %zu threads\n", t);
        return 1;
      }
      if (rep == 0 || run.seconds < best.seconds) best = run;
    }
    recursive[t] = best;
    const bool match = best.crc == recursive[1].crc;
    identical = identical && match;
    std::printf("%-10zu %-14.4f %6.2fx    %s\n", t, best.seconds,
                recursive[1].seconds / best.seconds, match ? "yes" : "NO");
  }

  // --- Part 2: overlapped vs sequential pipeline schedule (spouse app).
  dd::SpouseCorpusOptions corpus_options;
  const int num_docs = EnvInt("DD_BENCH_SCHED_DOCS", 200);
  corpus_options.num_documents = num_docs;
  corpus_options.num_persons = 60;
  corpus_options.seed = 31;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);

  PipelineResult sequential, overlapped;
  for (int rep = 0; rep < repeats; ++rep) {
    PipelineResult seq = RunSpousePipeline(corpus, 1);
    PipelineResult ovl = RunSpousePipeline(corpus, 4);
    if (!seq.ok || !ovl.ok) {
      std::fprintf(stderr, "spouse pipeline run failed\n");
      return 1;
    }
    if (rep == 0 || seq.seconds < sequential.seconds) sequential = std::move(seq);
    if (rep == 0 || ovl.seconds < overlapped.seconds) overlapped = std::move(ovl);
  }
  const bool marginals_identical = sequential.marginals == overlapped.marginals;
  const double overlap_ratio =
      sequential.seconds > 0 ? overlapped.seconds / sequential.seconds : 1.0;
  std::printf("\npipeline schedule (spouse, %d docs)\n", num_docs);
  std::printf("sequential (t1): %.4fs   overlapped (t4): %.4fs   ratio %.3f   "
              "marginals %s\n",
              sequential.seconds, overlapped.seconds, overlap_ratio,
              marginals_identical ? "identical" : "DIFFER");

  auto speedup = [&](size_t t) { return recursive[1].seconds / recursive[t].seconds; };

  FILE* out = std::fopen("BENCH_scheduler.json", "w");
  if (out) {
    std::fprintf(
        out,
        "{\n"
        "  \"experiment\": \"EXP-SCHED task-graph scheduler\",\n"
        "  \"hardware_concurrency\": %zu,\n"
        "  \"repeats\": %d,\n"
        "  \"recursive\": {\n"
        "    \"num_variables\": %zu,\n"
        "    \"num_factors\": %zu,\n"
        "    \"seconds\": {\"t1\": %.4f, \"t2\": %.4f, \"t4\": %.4f, \"t8\": %.4f}\n"
        "  },\n"
        "  \"recursive_speedup_2t\": %.3f,\n"
        "  \"recursive_speedup_4t\": %.3f,\n"
        "  \"recursive_speedup_8t\": %.3f,\n"
        "  \"graphs_identical\": %s,\n"
        "  \"pipeline\": {\n"
        "    \"sequential_seconds\": %.4f,\n"
        "    \"overlapped_seconds\": %.4f\n"
        "  },\n"
        "  \"overlap_ratio\": %.3f,\n"
        "  \"marginals_identical\": %s\n"
        "}\n",
        hw, repeats, recursive[1].num_variables, recursive[1].num_factors,
        recursive[1].seconds, recursive[2].seconds, recursive[4].seconds,
        recursive[8].seconds, speedup(2), speedup(4), speedup(8),
        identical ? "true" : "false", sequential.seconds, overlapped.seconds,
        overlap_ratio, marginals_identical ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_scheduler.json\n");
  }
  if (hw < 2) {
    std::printf("note: this machine has %zu core(s); speedup and overlap ratios\n"
                "reflect scheduling overhead, not scaling.\n",
                hw);
  }
  return (identical && marginals_identical) ? 0 : 2;
}
