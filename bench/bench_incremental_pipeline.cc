// EXP-PIPE — Figure 2's caption: "DeepDive provides a declarative
// language to specify each type of different rules and data, and
// techniques to incrementally execute this iterative process."
//
// This is the END-TO-END incremental claim: after the first full run,
// each new batch of documents flows through DRed grounding plus warm-
// started inference instead of a from-scratch rerun. We measure a
// sequence of update batches both ways and check that the incremental
// path (a) is significantly faster and (b) produces the same extractions.

#include <cstdio>
#include <memory>
#include <set>

#include "core/error_analysis.h"
#include "testdata/spouse_app.h"
#include "util/timer.h"

namespace {

dd::PipelineOptions Options() {
  dd::PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 200;
  options.inference.num_samples = 600;
  options.inference.update_burn_in = 30;
  options.threshold = 0.7;
  options.strategy = dd::PipelineOptions::Strategy::kSampling;
  return options;
}

}  // namespace

int main() {
  std::printf("=== EXP-PIPE: incremental vs from-scratch pipeline execution ===\n");

  dd::SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 500;
  corpus_options.seed = 91;
  dd::SpouseCorpus corpus = dd::GenerateSpouseCorpus(corpus_options);
  dd::SpouseAppOptions app;
  const size_t base_docs = 300;
  const size_t batch = 25;

  // Incremental pipeline: one instance, updated batch by batch.
  auto inc = std::make_unique<dd::DeepDivePipeline>(Options());
  if (!inc->LoadProgram(dd::SpouseDdlog(app)).ok()) return 1;
  inc->RegisterExtractor(dd::MakeSpouseExtractor(app));
  dd::LoadSpouseKb(inc.get(), corpus, app);
  for (size_t d = 0; d < base_docs; ++d) {
    (void)inc->AddDocument(corpus.documents[d].first, corpus.documents[d].second);
  }
  dd::Stopwatch watch;
  if (!inc->Run().ok()) return 1;
  std::printf("initial run over %zu docs: %.2fs\n\n", base_docs, watch.Seconds());
  std::printf("%-8s %-16s %-16s %-9s %s\n", "batch", "incremental(s)",
              "from-scratch(s)", "speedup", "extraction agreement");

  size_t docs_so_far = base_docs;
  for (int b = 0; b < 4; ++b) {
    // Incremental: add the batch and Run() again.
    watch.Restart();
    for (size_t d = docs_so_far; d < docs_so_far + batch && d < corpus.documents.size();
         ++d) {
      (void)inc->AddDocument(corpus.documents[d].first, corpus.documents[d].second);
    }
    if (!inc->Run().ok()) return 1;
    double inc_seconds = watch.Seconds();
    docs_so_far += batch;

    // From-scratch baseline over the same prefix.
    watch.Restart();
    auto scratch = std::make_unique<dd::DeepDivePipeline>(Options());
    if (!scratch->LoadProgram(dd::SpouseDdlog(app)).ok()) return 1;
    scratch->RegisterExtractor(dd::MakeSpouseExtractor(app));
    dd::LoadSpouseKb(scratch.get(), corpus, app);
    for (size_t d = 0; d < docs_so_far; ++d) {
      (void)scratch->AddDocument(corpus.documents[d].first,
                                 corpus.documents[d].second);
    }
    if (!scratch->Run().ok()) return 1;
    double scratch_seconds = watch.Seconds();

    // Output agreement at entity level (Jaccard of extraction sets).
    auto inc_out = inc->Extractions("MarriedPair");
    auto scratch_out = scratch->Extractions("MarriedPair");
    if (!inc_out.ok() || !scratch_out.ok()) return 1;
    std::set<dd::Tuple> a(inc_out->begin(), inc_out->end());
    std::set<dd::Tuple> bset(scratch_out->begin(), scratch_out->end());
    size_t inter = 0;
    for (const auto& t : a) inter += bset.count(t);
    size_t uni = a.size() + bset.size() - inter;
    double jaccard = uni == 0 ? 1.0 : static_cast<double>(inter) / uni;

    std::printf("%-8d %-16.3f %-16.3f %-9.1fx %.2f (|inc|=%zu |full|=%zu)\n", b + 1,
                inc_seconds, scratch_seconds, scratch_seconds / inc_seconds, jaccard,
                a.size(), bset.size());
  }
  std::printf("\npaper shape check: incremental execution wins by a wide factor\n"
              "(it skips re-extraction, re-learning, and full re-grounding) while\n"
              "agreeing with the from-scratch extractions.\n");
  return 0;
}
