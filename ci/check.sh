#!/usr/bin/env bash
# Tier-1 gate: plain build + tests, a perf-regression gate over the
# compiled kernel, then the same suite under AddressSanitizer +
# UndefinedBehaviorSanitizer (catches the OOB/UB class of bugs the
# compiled kernel streams could introduce).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== plain build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure

# Every bench gate below tees through this log; the ratchet summary at
# the end greps it to report which bars ran hard vs soft on this machine.
gate_log=build/bench_gate_summary.log
: > "$gate_log"

echo "=== bench gate (compiled kernel ns/delta ratchet) ==="
# Smoke-sized head-to-head: full 100k-variable graph (cache behavior must
# match the committed baseline) but few sweeps, google-benchmarks skipped.
# The fresh JSON lands in build/ and is compared against the committed
# baseline; >15% regression fails. DD_BENCH_GATE_SKIP=1 overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && DD_BENCH_SWEEPS="${DD_BENCH_SWEEPS:-4}" \
      ./bench/bench_kernels --benchmark_filter='^$')
  python3 ci/bench_gate.py BENCH_kernels.json build/BENCH_kernels.json | tee -a "$gate_log"
fi

echo "=== bench gate (parallel grounding: graph identity + speedup ratchet) ==="
# Serial-vs-parallel grounding over the synthetic + spouse workloads.
# Graph CRC identity across thread counts is enforced unconditionally;
# the speedup ratchet only engages on machines with >= 2 cores (see
# ci/bench_gate.py). Same DD_BENCH_GATE_SKIP / tolerance overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_parallel_grounding)
  python3 ci/bench_gate.py BENCH_grounding.json build/BENCH_grounding.json | tee -a "$gate_log"
fi

echo "=== bench gate (scheduler: recursive strata + phase overlap) ==="
# Recursive-strata grounding CRC identity and overlapped-vs-sequential
# pipeline marginal identity are enforced unconditionally; the speedup
# and overlap-ratio ratchets engage on machines with >= 2 cores (see
# ci/bench_gate.py). Same DD_BENCH_GATE_SKIP / tolerance overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_scheduler)
  python3 ci/bench_gate.py BENCH_scheduler.json build/BENCH_scheduler.json | tee -a "$gate_log"
fi

echo "=== bench gate (storage: scan/load identity + floor ratchets) ==="
# Columnar-vs-row scan agreement and mmap-vs-text graph identity are
# enforced unconditionally; the DESIGN.md §12 performance floors (2x
# scan, 10x load, memory below the row store) gate on any machine since
# they are single-threaded ratios. Same DD_BENCH_GATE_SKIP override.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_storage)
  python3 ci/bench_gate.py BENCH_storage.json build/BENCH_storage.json | tee -a "$gate_log"
fi

echo "=== bench gate (serving: resilience identities + QPS/p99 floors) ==="
# Epoch-swapped snapshot serving under closed-loop load, with and without
# mid-run swaps. The DESIGN.md §13 resilience identities (bitwise
# response consistency, full request accounting, monotone epochs, zero
# drops across swaps) are enforced unconditionally; QPS/p99 have wide
# absolute floors and a warn-only baseline ratchet. Same overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_serving)
  python3 ci/bench_gate.py BENCH_serving.json build/BENCH_serving.json | tee -a "$gate_log"
fi

echo "=== bench gate (streaming: table identity + byte budget + MB/s floor) ==="
# The streaming front end ingesting the logs corpus at 1/2/4/8 workers.
# Table CRC identity against the sequential batch oracle and the
# in-flight byte budget are enforced unconditionally; single-worker MB/s
# has a wide absolute floor, and the multi-worker scaling ratchet
# engages on machines with >= 2 cores (see ci/bench_gate.py). Same
# DD_BENCH_GATE_SKIP / tolerance overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_streaming)
  python3 ci/bench_gate.py BENCH_streaming.json build/BENCH_streaming.json | tee -a "$gate_log"
fi

echo "=== bench gate (distributed: 1-shard identity + inference fidelity) ==="
# Sharded learning + inference across coordinator/worker loopback. The
# DESIGN.md §15 identities are enforced unconditionally: a 1-shard run
# bitwise-matches the single-node sampler, and 2-/4-shard inference over
# a fixed model stays within the 0.05 deviation ceiling (deterministic
# per seed, machine-independent). The shard-speedup ratchet engages on
# machines with >= 2 cores (see ci/bench_gate.py). Same overrides.
if [ "${DD_BENCH_GATE_SKIP:-0}" = "1" ]; then
  echo "bench gate skipped (DD_BENCH_GATE_SKIP=1)"
else
  (cd build && ./bench/bench_distributed)
  python3 ci/bench_gate.py BENCH_distributed.json build/BENCH_distributed.json | tee -a "$gate_log"
fi

echo "=== bench ratchet summary ==="
if [ -s "$gate_log" ]; then
  echo "bench ratchets:" $(sed -n 's/^bench-gate: ratchet-summary: //p' "$gate_log" | tr '\n' ' ')
else
  echo "bench ratchets: none ran (DD_BENCH_GATE_SKIP=1)"
fi

echo "=== tsan build + concurrency-focused ctest (thread) ==="
# ThreadSanitizer over every test carrying the `concurrency` ctest label
# (declared next to the test in tests/CMakeLists.txt, so a new
# multi-threaded suite is picked up here the moment it is labeled — no
# hand-maintained binary regex to forget).
cmake -B build-tsan -S . -DDD_SANITIZE="thread" >/dev/null
cmake --build build-tsan -j
# ci/tsan.supp masks only the intentionally-racy Hogwild/NUMA samplers.
TSAN_OPTIONS="suppressions=$PWD/ci/tsan.supp" \
  ctest --test-dir build-tsan --output-on-failure -L concurrency

echo "=== sanitized build + ctest (address;undefined) ==="
cmake -B build-san -S . -DDD_SANITIZE="address;undefined" >/dev/null
cmake --build build-san -j
ctest --test-dir build-san --output-on-failure

echo "=== fault-injection pass ==="
# Enable every registered failpoint at p=1.0 for one hit and run every
# sanitized binary carrying the `failpoints` ctest label. Sites live in
# two places: the named constants in src/util/failpoint.h, and literal
# names registered directly at DD_FAILPOINT(...) call sites in .cc
# files — grep both, so a new site (e.g. the stream.* family) joins the
# sweep the moment it is registered. Injected faults may fail individual
# test expectations (that's the point); what must NOT happen is a crash
# (rc >= 128 means a signal) or a sanitizer report — errors have to
# propagate as clean Status values.
failpoints=$(
  {
    grep -oE '"[a-z_]+\.[a-z_]+"' src/util/failpoint.h
    grep -rhoE 'DD_FAILPOINT(_WRITE)?\("[a-z_]+\.[a-z_]+"' src --include='*.cc' |
      grep -oE '"[a-z_]+\.[a-z_]+"'
  } | tr -d '"' | sort -u
)
if [ -z "$failpoints" ]; then
  echo "FAIL: failpoint discovery grep found no sites"
  exit 1
fi
echo "discovered failpoint sites:" $failpoints
failpoint_tests=$(ctest --test-dir build-san -N -L failpoints |
  sed -n 's/^ *Test #[0-9]*: //p')
if [ -z "$failpoint_tests" ]; then
  echo "FAIL: no tests carry the 'failpoints' ctest label"
  exit 1
fi
echo "failpoint-labeled binaries:" $failpoint_tests
for fp in $failpoints; do
  for test_name in $failpoint_tests; do
    bin="build-san/tests/$test_name"
    echo "--- $fp via $(basename "$bin")"
    set +e
    out=$(DD_FAILPOINTS="$fp=error(p=1,hits=1)" "$bin" 2>&1)
    rc=$?
    set -e
    if [ "$rc" -ge 128 ]; then
      echo "$out" | tail -40
      echo "FAIL: $(basename "$bin") died of a signal (rc=$rc) with failpoint $fp"
      exit 1
    fi
    if echo "$out" | grep -qE "AddressSanitizer|runtime error:"; then
      echo "$out" | grep -E "AddressSanitizer|runtime error:" | head
      echo "FAIL: sanitizer report with failpoint $fp in $(basename "$bin")"
      exit 1
    fi
  done
done
echo "fault-injection pass: no crashes, no sanitizer reports"

echo "ci/check.sh: all green"
