#!/usr/bin/env bash
# Tier-1 gate: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (catches the OOB/UB class
# of bugs the compiled kernel streams could introduce).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== plain build + ctest ==="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure

echo "=== sanitized build + ctest (address;undefined) ==="
cmake -B build-san -S . -DDD_SANITIZE="address;undefined" >/dev/null
cmake --build build-san -j
ctest --test-dir build-san --output-on-failure

echo "ci/check.sh: all green"
