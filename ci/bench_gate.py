#!/usr/bin/env python3
"""Perf-regression gate over the compiled-kernel benchmark.

Usage: bench_gate.py <baseline.json> <fresh.json>

Compares the freshly measured ``compiled_ns_per_delta`` from
``bench_kernels`` against the committed baseline (BENCH_kernels.json at
the repo root) and fails when the fresh number regresses more than the
tolerance. Also insists the interpreted and compiled kernels still agree
bit-for-bit (``deltas_agree``) — a fast wrong kernel must not pass.

Environment:
  DD_BENCH_GATE_SKIP=1        skip the gate entirely (exit 0); for noisy
                              or shared runners where timing is garbage.
  DD_BENCH_GATE_TOLERANCE     allowed fractional regression, default 0.15.
"""

import json
import os
import sys


def fail(msg: str) -> "int":
    print(f"bench-gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv) -> int:
    if os.environ.get("DD_BENCH_GATE_SKIP") == "1":
        print("bench-gate: skipped (DD_BENCH_GATE_SKIP=1)")
        return 0
    if len(argv) != 3:
        return fail(f"usage: {argv[0]} <baseline.json> <fresh.json>")

    try:
        tolerance = float(os.environ.get("DD_BENCH_GATE_TOLERANCE", "0.15"))
    except ValueError:
        return fail("DD_BENCH_GATE_TOLERANCE is not a number")
    if tolerance < 0:
        return fail("DD_BENCH_GATE_TOLERANCE must be >= 0")

    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read benchmark JSON: {e}")

    for doc, label in ((baseline, "baseline"), (fresh, "fresh")):
        if "compiled_ns_per_delta" not in doc:
            return fail(f"{label} JSON has no compiled_ns_per_delta")

    if fresh.get("deltas_agree") is not True:
        return fail("fresh run: interpreted and compiled kernels disagree")

    base_ns = float(baseline["compiled_ns_per_delta"])
    fresh_ns = float(fresh["compiled_ns_per_delta"])
    if base_ns <= 0:
        return fail(f"baseline compiled_ns_per_delta is non-positive: {base_ns}")

    limit_ns = base_ns * (1.0 + tolerance)
    ratio = fresh_ns / base_ns
    verdict = "OK" if fresh_ns <= limit_ns else "REGRESSION"
    print(
        f"bench-gate: compiled kernel {fresh_ns:.2f} ns/delta vs baseline "
        f"{base_ns:.2f} ns/delta ({ratio:.2f}x, limit {limit_ns:.2f} at "
        f"+{tolerance * 100:.0f}%) -> {verdict}"
    )
    if fresh_ns > limit_ns:
        return fail(
            f"compiled kernel regressed {ratio:.2f}x over baseline "
            f"(override with DD_BENCH_GATE_SKIP=1 or refresh BENCH_kernels.json "
            f"if the change is intentional)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
