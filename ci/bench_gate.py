#!/usr/bin/env python3
"""Perf-regression gate over the benchmark JSONs.

Usage: bench_gate.py <baseline.json> <fresh.json>

Two modes, auto-detected from the JSON shape:

* Kernel mode (``compiled_ns_per_delta`` present, from ``bench_kernels``):
  the fresh ns/delta must not regress more than the tolerance over the
  committed BENCH_kernels.json, and the interpreted and compiled kernels
  must still agree bit-for-bit (``deltas_agree``) — a fast wrong kernel
  must not pass.

* Grounding mode (``speedup_Nt`` keys present, from
  ``bench_parallel_grounding``): the parallel grounder must still produce
  CRC-identical graphs (``graphs_identical``), and the serial-vs-parallel
  speedup at the largest thread count the fresh machine can actually
  exercise (``hardware_concurrency`` >= N) must not drop more than the
  tolerance below the baseline. The ratchet is *hard* (a failure) when
  the baseline itself was measured with the cores to back it, and
  additionally requires genuine speedup (>= 1.0x); when the baseline was
  recorded on an undersized machine the ratchet only warns, because the
  bar would compare against oversubscription noise. On single-core
  runners the speedup ratchet is skipped entirely but graph identity is
  still enforced.

* Scheduler mode (``recursive_speedup_4t`` present, from
  ``bench_scheduler``): recursive-strata grounding must stay
  CRC-identical to the serial oracle and the overlapped pipeline's
  marginals identical to the sequential schedule's — always, on any
  machine. On multicore runners the recursive speedup ratchets like
  grounding mode, and the overlapped pipeline must not run slower than
  the sequential schedule beyond the tolerance (``overlap_ratio``).

* Storage mode (``columnar_scan_speedup`` present, from
  ``bench_storage``): the columnar and row-store scans must produce
  bit-identical aggregates (``scans_agree``) and the mmap-loaded graph
  must serialize exactly like the text oracle (``graph_identical``) —
  always. The DESIGN.md §12 performance claims are absolute floors:
  columnar scan >= 2x the row store, mmap load >= 10x text parse,
  columnar memory below the row store. Ratios are single-threaded and
  machine-local, so the committed-baseline comparison only warns.

* Streaming mode (``streaming_mbps`` present, from ``bench_streaming``):
  the streamed tables must be CRC-identical to the sequential batch
  oracle (``tables_identical``) and the in-flight high-water mark must
  respect the byte budget (``budget_respected``) — always, on any
  machine. Single-worker MB/s has a wide absolute floor; the
  multi-worker scaling ratchets like grounding mode
  (``stream_speedup_Nt``), and the committed-baseline MB/s comparison
  only warns (machine-local throughput).

* Distributed mode (``one_shard_identical`` present, from
  ``bench_distributed``): the DESIGN.md §15 identities are unconditional
  — a 1-shard run must be bit-identical to the single-node sampler
  (``one_shard_identical``), and 2-/4-shard inference over a fixed model
  must stay within the 0.05 deviation ceiling of the single-node
  marginals (``inference_max_dev_{2,4}shard`` — deterministic per seed,
  machine-independent). The shard-speedup scaling ratchets like
  grounding mode (``shard_speedup_Nt``): hard on real multicore
  baselines, a warning when the baseline machine lacked the cores.

* Serving mode (``serving_qps`` present, from ``bench_serving``): the
  resilience identities of DESIGN.md §13 are unconditional — sampled
  responses bitwise-match the epoch they claim (``responses_consistent``),
  every issued request is answered or explicitly shed
  (``requests_accounted``, ``swap_dropped_requests == 0``), and no client
  ever observes an epoch id go backwards (``epochs_monotone``). Absolute
  floors with wide margin: sustained QPS >= 1000 and p99 <= 100 ms, both
  steady-state and with mid-run swaps. Throughput is machine-local, so
  the committed-baseline comparison only warns.

Every ratchet also emits a machine-greppable
``bench-gate: ratchet-summary: <label>=<hard|soft|skipped>`` line so
ci/check.sh can print a one-line digest of which bars actually gated
the run and which only warned.

Environment:
  DD_BENCH_GATE_SKIP=1        skip the gate entirely (exit 0); for noisy
                              or shared runners where timing is garbage.
  DD_BENCH_GATE_TOLERANCE     allowed fractional regression, default 0.15.
"""

import json
import os
import sys


def fail(msg: str) -> "int":
    print(f"bench-gate: FAIL: {msg}", file=sys.stderr)
    return 1


def summary(label: str, mode: str) -> None:
    """One greppable line per ratchet: did it gate (hard), only warn
    (soft), or not engage at all on this machine (skipped)?"""
    print(f"bench-gate: ratchet-summary: {label}={mode}")


def ratchet_speedup(baseline, fresh, tolerance, prefix, label, json_name) -> int:
    """Shared serial-vs-parallel speedup ratchet over ``<prefix>_Nt`` keys.

    Hard (failing, with a >= 1.0x floor) when the baseline machine had the
    cores to make its number real; a warning otherwise. Returns a gate
    exit code; 0 also covers the legitimately-skipped cases.
    """
    hw = int(fresh.get("hardware_concurrency", 1))
    if hw < 2:
        print(f"bench-gate: {label} speedup ratchet skipped (fresh machine "
              f"has {hw} core(s) — parallel timing would measure "
              f"oversubscription, not scaling)")
        summary(f"{label}-speedup", "skipped")
        return 0

    # Largest thread count both JSONs measured that the fresh machine can
    # genuinely run in parallel.
    gate_t = None
    for t in (8, 4, 2):
        key = f"{prefix}_{t}t"
        if key in baseline and key in fresh and t <= hw:
            gate_t = t
            break
    if gate_t is None:
        print(f"bench-gate: no common feasible {prefix}_Nt key; ratchet skipped")
        summary(f"{label}-speedup", "skipped")
        return 0

    key = f"{prefix}_{gate_t}t"
    base_speedup = float(baseline[key])
    fresh_speedup = float(fresh[key])
    base_hw = int(baseline.get("hardware_concurrency", 1))
    # Soft bar: an oversubscribed baseline number is noise, not a floor.
    hard = base_hw >= gate_t
    limit = base_speedup * (1.0 - tolerance)
    if hard:
        # A real multicore baseline also implies parallel must actually
        # win: never accept a sub-1.0x "speedup" however low the ratchet.
        limit = max(limit, 1.0)
    verdict = "OK" if fresh_speedup >= limit else (
        "REGRESSION" if hard else "WARN (soft: baseline undersized)")
    print(
        f"bench-gate: {label} speedup at {gate_t} threads "
        f"{fresh_speedup:.2f}x vs baseline {base_speedup:.2f}x on "
        f"{base_hw} core(s) (limit {limit:.2f}x, "
        f"{'hard' if hard else 'soft'}) -> {verdict}"
    )
    summary(f"{label}-speedup", "hard" if hard else "soft")
    if hard and fresh_speedup < limit:
        return fail(
            f"{label} speedup regressed: {fresh_speedup:.2f}x < "
            f"{limit:.2f}x (override with DD_BENCH_GATE_SKIP=1 or refresh "
            f"{json_name} if the change is intentional)"
        )
    return 0


def gate_grounding(baseline, fresh, tolerance) -> int:
    if fresh.get("graphs_identical") is not True:
        return fail("fresh run: parallel grounding produced a different graph "
                    "than the serial oracle (graphs_identical != true)")
    return ratchet_speedup(baseline, fresh, tolerance, "speedup",
                           "grounding", "BENCH_grounding.json")


def gate_scheduler(baseline, fresh, tolerance) -> int:
    # Identity is the contract, enforced on any machine.
    if fresh.get("graphs_identical") is not True:
        return fail("fresh run: recursive-strata grounding produced a "
                    "different graph than the serial oracle "
                    "(graphs_identical != true)")
    if fresh.get("marginals_identical") is not True:
        return fail("fresh run: overlapped pipeline produced different "
                    "marginals than the sequential schedule "
                    "(marginals_identical != true)")

    rc = ratchet_speedup(baseline, fresh, tolerance, "recursive_speedup",
                         "recursive-strata", "BENCH_scheduler.json")
    if rc != 0:
        return rc

    hw = int(fresh.get("hardware_concurrency", 1))
    base_hw = int(baseline.get("hardware_concurrency", 1))
    if hw < 2:
        print("bench-gate: overlap ratio check skipped (single-core runner)")
        summary("overlap-ratio", "skipped")
        return 0
    ratio = float(fresh.get("overlap_ratio", 1.0))
    hard = base_hw >= 2
    limit = 1.0 + tolerance
    verdict = "OK" if ratio <= limit else (
        "REGRESSION" if hard else "WARN (soft: baseline undersized)")
    print(f"bench-gate: pipeline overlap ratio {ratio:.3f} "
          f"(overlapped/sequential wall clock, limit {limit:.3f}, "
          f"{'hard' if hard else 'soft'}) -> {verdict}")
    summary("overlap-ratio", "hard" if hard else "soft")
    if hard and ratio > limit:
        return fail(
            f"overlapped pipeline is slower than the sequential schedule: "
            f"ratio {ratio:.3f} > {limit:.3f} (override with "
            f"DD_BENCH_GATE_SKIP=1 or refresh BENCH_scheduler.json if the "
            f"change is intentional)"
        )
    return 0


def gate_storage(baseline, fresh, tolerance) -> int:
    # Identity is the contract, enforced on any machine: a fast scan or
    # load that computes the wrong answer must not pass.
    if fresh.get("scans_agree") is not True:
        return fail("fresh run: columnar and row-store scans disagree "
                    "(scans_agree != true)")
    if fresh.get("graph_identical") is not True:
        return fail("fresh run: mmap-loaded graph differs from the text "
                    "oracle (graph_identical != true)")

    # Absolute floors — the claims DESIGN.md §12 makes, with margin far
    # beyond timing noise (measured ~4x / ~60x / 1.3x).
    floors = (
        ("columnar_scan_speedup", 2.0, False, "columnar scan vs row store"),
        ("mmap_load_speedup", 10.0, False, "mmap snapshot load vs text parse"),
        ("memory_reduction", 1.0, True, "row-store bytes / columnar bytes"),
    )
    for key, floor, strict, label in floors:
        value = float(fresh.get(key, 0.0))
        ok = value > floor if strict else value >= floor
        verdict = "OK" if ok else "REGRESSION"
        print(f"bench-gate: {label} {value:.2f}x (floor {floor:.1f}x) "
              f"-> {verdict}")
        if not ok:
            return fail(
                f"{label} fell to {value:.2f}x, below the {floor:.1f}x floor "
                f"(override with DD_BENCH_GATE_SKIP=1 or fix the regression)")

    # Baseline comparison: warn-only ratchet. These are single-threaded
    # ratios, so they travel across machines better than parallel
    # speedups, but a hard cross-machine bar would still be noise.
    for key, label in (("columnar_scan_speedup", "scan speedup"),
                       ("mmap_load_speedup", "load speedup")):
        if key not in baseline:
            continue
        base = float(baseline[key])
        value = float(fresh.get(key, 0.0))
        limit = base * (1.0 - tolerance)
        if value < limit:
            print(f"bench-gate: WARN: {label} {value:.2f}x is below the "
                  f"committed baseline {base:.2f}x - {tolerance * 100:.0f}% "
                  f"(soft: single-machine ratio)")
        else:
            print(f"bench-gate: {label} {value:.2f}x vs baseline "
                  f"{base:.2f}x -> OK")
    summary("storage-floors", "hard")
    summary("storage-baseline", "soft")
    return 0


def gate_distributed(baseline, fresh, tolerance) -> int:
    # Identity is the contract, enforced on any machine: one shard must
    # BE the single-node sampler, bit for bit — the wire protocol, the
    # shard worker, and the coordinator are all in that loop.
    if fresh.get("one_shard_identical") is not True:
        return fail("fresh run: 1-shard distributed run diverged bitwise "
                    "from the single-node sampler "
                    "(one_shard_identical != true)")

    # Sharded inference over a fixed model must track the single-node
    # marginals. These deviations are deterministic per seed (thread
    # launch mode, one worker per shard), so the ceiling holds on any
    # machine; a cut factor missing from a shard's conditionals shows up
    # here as a 0.15+ boundary bias.
    ceiling = 0.05
    for shards in (2, 4):
        key = f"inference_max_dev_{shards}shard"
        value = float(fresh.get(key, 1.0))
        ok = 0.0 <= value <= ceiling
        verdict = "OK" if ok else "REGRESSION"
        print(f"bench-gate: {shards}-shard inference max deviation "
              f"{value:.4f} (ceiling {ceiling:.2f}) -> {verdict}")
        if not ok:
            return fail(
                f"{shards}-shard marginals deviate {value:.4f} from the "
                f"single-node chain, past the {ceiling:.2f} ceiling "
                f"(override with DD_BENCH_GATE_SKIP=1 or fix the "
                f"regression)")
    summary("distributed-identity", "hard")

    # Shard scaling: same warn-then-harden, core-aware rule as the
    # grounding speedup ratchet.
    return ratchet_speedup(baseline, fresh, tolerance, "shard_speedup",
                           "distributed", "BENCH_distributed.json")


def gate_serving(baseline, fresh, tolerance) -> int:
    # Resilience identities are the contract, enforced on any machine: a
    # fast server that tears epochs or drops requests must not pass.
    identities = (
        ("responses_consistent",
         "served marginals differ bitwise from the epoch they claim"),
        ("requests_accounted",
         "requests vanished without an answer or an explicit shed"),
        ("epochs_monotone", "a client observed an epoch id go backwards"),
    )
    for key, why in identities:
        if fresh.get(key) is not True:
            return fail(f"fresh run: {why} ({key} != true)")
    dropped = int(fresh.get("swap_dropped_requests", -1))
    if dropped != 0:
        return fail(f"fresh run: {dropped} request(s) dropped across epoch "
                    "swaps (swap_dropped_requests != 0)")

    # Absolute floors, far beyond timing noise (measured ~50k qps /
    # sub-ms p99 even on a single Debug core).
    floors = (
        ("serving_qps", 1000.0, False, "steady-state QPS"),
        ("swap_qps", 1000.0, False, "QPS with mid-run swaps"),
        ("p99_ms", 100.0, True, "steady-state p99 latency (ms)"),
        ("swap_p99_ms", 100.0, True, "p99 latency with swaps (ms)"),
    )
    for key, bound, is_ceiling, label in floors:
        value = float(fresh.get(key, -1.0))
        ok = (0.0 <= value <= bound) if is_ceiling else value >= bound
        kind = "ceiling" if is_ceiling else "floor"
        verdict = "OK" if ok else "REGRESSION"
        print(f"bench-gate: {label} {value:.1f} ({kind} {bound:.0f}) "
              f"-> {verdict}")
        if not ok:
            return fail(
                f"{label} is {value:.1f}, past the {bound:.0f} {kind} "
                f"(override with DD_BENCH_GATE_SKIP=1 or fix the regression)")

    # Baseline comparison: warn-only ratchet (QPS is machine-local).
    for key, label in (("serving_qps", "steady QPS"),
                       ("swap_qps", "swap QPS")):
        if key not in baseline:
            continue
        base = float(baseline[key])
        value = float(fresh.get(key, 0.0))
        limit = base * (1.0 - tolerance)
        if value < limit:
            print(f"bench-gate: WARN: {label} {value:.0f} is below the "
                  f"committed baseline {base:.0f} - {tolerance * 100:.0f}% "
                  f"(soft: machine-local throughput)")
        else:
            print(f"bench-gate: {label} {value:.0f} vs baseline "
                  f"{base:.0f} -> OK")
    summary("serving-floors", "hard")
    summary("serving-baseline", "soft")
    return 0


def gate_streaming(baseline, fresh, tolerance) -> int:
    # Identity is the contract, enforced on any machine: a fast ingest
    # that reorders rows or blows the memory budget must not pass.
    if fresh.get("tables_identical") is not True:
        return fail("fresh run: streamed tables differ from the sequential "
                    "batch oracle (tables_identical != true)")
    if fresh.get("budget_respected") is not True:
        return fail("fresh run: in-flight bytes exceeded the byte budget "
                    "(budget_respected != true)")

    # Absolute floor with wide margin (measured ~90 MB/s on a single
    # Debug core): single-worker throughput is machine-local but a drop
    # below this is a structural regression, not noise.
    floor = 5.0
    value = float(fresh.get("streaming_mbps", 0.0))
    verdict = "OK" if value >= floor else "REGRESSION"
    print(f"bench-gate: single-worker ingest {value:.1f} MB/s "
          f"(floor {floor:.0f}) -> {verdict}")
    summary("streaming-floor", "hard")
    if value < floor:
        return fail(
            f"streaming ingest fell to {value:.1f} MB/s, below the "
            f"{floor:.0f} MB/s floor (override with DD_BENCH_GATE_SKIP=1 "
            f"or fix the regression)")

    # Multi-worker scaling: same warn-then-harden, core-aware rule as the
    # grounding speedup ratchet.
    rc = ratchet_speedup(baseline, fresh, tolerance, "stream_speedup",
                         "streaming", "BENCH_streaming.json")
    if rc != 0:
        return rc

    # Baseline comparison: warn-only ratchet (MB/s is machine-local).
    if "streaming_mbps" in baseline:
        base = float(baseline["streaming_mbps"])
        limit = base * (1.0 - tolerance)
        if value < limit:
            print(f"bench-gate: WARN: ingest {value:.1f} MB/s is below the "
                  f"committed baseline {base:.1f} - {tolerance * 100:.0f}% "
                  f"(soft: machine-local throughput)")
        else:
            print(f"bench-gate: ingest {value:.1f} MB/s vs baseline "
                  f"{base:.1f} -> OK")
    summary("streaming-baseline", "soft")
    return 0


def main(argv) -> int:
    if os.environ.get("DD_BENCH_GATE_SKIP") == "1":
        print("bench-gate: skipped (DD_BENCH_GATE_SKIP=1)")
        return 0
    if len(argv) != 3:
        return fail(f"usage: {argv[0]} <baseline.json> <fresh.json>")

    try:
        tolerance = float(os.environ.get("DD_BENCH_GATE_TOLERANCE", "0.15"))
    except ValueError:
        return fail("DD_BENCH_GATE_TOLERANCE is not a number")
    if tolerance < 0:
        return fail("DD_BENCH_GATE_TOLERANCE must be >= 0")

    try:
        with open(argv[1]) as f:
            baseline = json.load(f)
        with open(argv[2]) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot read benchmark JSON: {e}")

    baseline_scheduler = "recursive_speedup_4t" in baseline
    fresh_scheduler = "recursive_speedup_4t" in fresh
    if baseline_scheduler != fresh_scheduler:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_scheduler:
        return gate_scheduler(baseline, fresh, tolerance)

    baseline_storage = "columnar_scan_speedup" in baseline
    fresh_storage = "columnar_scan_speedup" in fresh
    if baseline_storage != fresh_storage:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_storage:
        return gate_storage(baseline, fresh, tolerance)

    baseline_serving = "serving_qps" in baseline
    fresh_serving = "serving_qps" in fresh
    if baseline_serving != fresh_serving:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_serving:
        return gate_serving(baseline, fresh, tolerance)

    baseline_distributed = "one_shard_identical" in baseline
    fresh_distributed = "one_shard_identical" in fresh
    if baseline_distributed != fresh_distributed:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_distributed:
        return gate_distributed(baseline, fresh, tolerance)

    baseline_streaming = "streaming_mbps" in baseline
    fresh_streaming = "streaming_mbps" in fresh
    if baseline_streaming != fresh_streaming:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_streaming:
        return gate_streaming(baseline, fresh, tolerance)

    baseline_grounding = "graphs_identical" in baseline
    fresh_grounding = "graphs_identical" in fresh
    if baseline_grounding != fresh_grounding:
        return fail("baseline and fresh JSONs are from different benchmarks")
    if baseline_grounding:
        return gate_grounding(baseline, fresh, tolerance)

    for doc, label in ((baseline, "baseline"), (fresh, "fresh")):
        if "compiled_ns_per_delta" not in doc:
            return fail(f"{label} JSON has no compiled_ns_per_delta")

    if fresh.get("deltas_agree") is not True:
        return fail("fresh run: interpreted and compiled kernels disagree")

    base_ns = float(baseline["compiled_ns_per_delta"])
    fresh_ns = float(fresh["compiled_ns_per_delta"])
    if base_ns <= 0:
        return fail(f"baseline compiled_ns_per_delta is non-positive: {base_ns}")

    limit_ns = base_ns * (1.0 + tolerance)
    ratio = fresh_ns / base_ns
    verdict = "OK" if fresh_ns <= limit_ns else "REGRESSION"
    print(
        f"bench-gate: compiled kernel {fresh_ns:.2f} ns/delta vs baseline "
        f"{base_ns:.2f} ns/delta ({ratio:.2f}x, limit {limit_ns:.2f} at "
        f"+{tolerance * 100:.0f}%) -> {verdict}"
    )
    summary("kernel-ns-per-delta", "hard")
    if fresh_ns > limit_ns:
        return fail(
            f"compiled kernel regressed {ratio:.2f}x over baseline "
            f"(override with DD_BENCH_GATE_SKIP=1 or refresh BENCH_kernels.json "
            f"if the change is intentional)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
