#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/error_analysis.h"
#include "core/pipeline.h"
#include "testdata/spouse_app.h"

namespace dd {
namespace {

PipelineOptions FastOptions() {
  PipelineOptions options;
  options.learn.epochs = 150;
  options.learn.learning_rate = 0.05;
  options.learn.decay = 0.99;
  options.learn.l2 = 0.005;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.threshold = 0.7;
  options.strategy = PipelineOptions::Strategy::kSampling;
  return options;
}

TEST(PipelineTest, SpouseEndToEndQuality) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 120;
  corpus_opts.seed = 11;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);

  SpouseAppOptions app;
  auto pipeline = MakeSpousePipeline(corpus, app, FastOptions());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto extractions = (*pipeline)->Extractions("MarriedPair");
  ASSERT_TRUE(extractions.ok()) << extractions.status().ToString();
  auto truth = SpouseTruthTuples(corpus);
  EvaluationResult metrics = Evaluate(*extractions, truth);

  // The paper's claim: with features + distant supervision the system
  // reaches high quality. On the synthetic corpus (complete truth) we
  // demand strong precision and recall.
  EXPECT_GT(metrics.precision, 0.8) << "precision too low";
  EXPECT_GT(metrics.recall, 0.6) << "recall too low";
  EXPECT_GT(metrics.f1, 0.7);

  // Phase timings were recorded (Figure 2's quantities).
  const PhaseTimings& t = (*pipeline)->timings();
  EXPECT_GT(t.extraction_seconds, 0.0);
  EXPECT_GT(t.grounding_seconds, 0.0);
  EXPECT_GT(t.learning_seconds, 0.0);
  EXPECT_GT(t.inference_seconds, 0.0);
}

TEST(PipelineTest, MarginalsAreProbabilities) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 40;
  corpus_opts.seed = 12;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);
  auto pipeline = MakeSpousePipeline(corpus, SpouseAppOptions(), FastOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Run().ok());
  auto marginals = (*pipeline)->Marginals("MarriedMention");
  ASSERT_TRUE(marginals.ok());
  EXPECT_FALSE(marginals->empty());
  for (const auto& [tuple, p] : *marginals) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(PipelineTest, IncrementalUpdateAddsDocuments) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 60;
  corpus_opts.seed = 13;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);

  // First run with the first 40 documents.
  PipelineOptions options = FastOptions();
  options.anticipated_changes = 10;
  auto pipeline = std::make_unique<DeepDivePipeline>(options);
  SpouseAppOptions app;
  ASSERT_TRUE(pipeline->LoadProgram(SpouseDdlog(app)).ok());
  pipeline->RegisterExtractor(MakeSpouseExtractor(app));
  LoadSpouseKb(pipeline.get(), corpus, app);
  for (size_t d = 0; d < 40; ++d) {
    ASSERT_TRUE(
        pipeline->AddDocument(corpus.documents[d].first, corpus.documents[d].second)
            .ok());
  }
  ASSERT_TRUE(pipeline->Run().ok());
  size_t factors_before = pipeline->grounding_stats().num_factors;

  // Incremental run over the remaining documents.
  for (size_t d = 40; d < corpus.documents.size(); ++d) {
    ASSERT_TRUE(
        pipeline->AddDocument(corpus.documents[d].first, corpus.documents[d].second)
            .ok());
  }
  ASSERT_TRUE(pipeline->Run().ok());
  EXPECT_GT(pipeline->grounding_stats().num_factors, factors_before);

  // Marginals exist for candidates from the new documents too.
  auto marginals = pipeline->Marginals("MarriedMention");
  ASSERT_TRUE(marginals.ok());
  EXPECT_FALSE(marginals->empty());
}

TEST(PipelineTest, WriteMarginalTables) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 30;
  corpus_opts.seed = 14;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);
  auto pipeline = MakeSpousePipeline(corpus, SpouseAppOptions(), FastOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Run().ok());
  ASSERT_TRUE((*pipeline)->WriteMarginalTables().ok());
  auto table = (*pipeline)->catalog()->GetTable("MarriedPair__marginals");
  ASSERT_TRUE(table.ok());
  EXPECT_GT((*table)->size(), 0u);
  // prob column is a double in [0, 1].
  for (const Tuple& row : (*table)->Scan()) {
    const Value& prob = row.at(row.size() - 1);
    ASSERT_EQ(prob.type(), ValueType::kDouble);
    EXPECT_GE(prob.AsDouble(), 0.0);
    EXPECT_LE(prob.AsDouble(), 1.0);
  }
}

TEST(PipelineTest, ErrorsBeforeRun) {
  DeepDivePipeline pipeline;
  EXPECT_FALSE(pipeline.Run().ok());  // no program
  EXPECT_FALSE(pipeline.Marginals("X").ok());
  EXPECT_FALSE(pipeline.ProbabilityOf("X", Tuple()).ok());
}

TEST(PipelineTest, DuplicateDocumentRejected) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.AddDocument("d1", "Some text.").ok());
  EXPECT_EQ(pipeline.AddDocument("d1", "Other text.").code(),
            StatusCode::kAlreadyExists);
}

TEST(CalibrationTest, PerfectPredictionsCalibrate) {
  std::vector<double> probs;
  std::vector<int> truth;
  // 100 items at p=0.95 of which 95 true; 100 at p=0.05 of which 5 true.
  for (int i = 0; i < 100; ++i) {
    probs.push_back(0.95);
    truth.push_back(i < 95 ? 1 : 0);
    probs.push_back(0.05);
    truth.push_back(i < 5 ? 1 : 0);
  }
  auto report = CalibrationReport::Build(probs, truth, 10);
  EXPECT_LT(report.MaxCalibrationGap(), 0.05);
  EXPECT_DOUBLE_EQ(report.ExtremeMassFraction(), 1.0);  // perfect U-shape
  EXPECT_FALSE(report.ToText().empty());
}

TEST(CalibrationTest, MiscalibratedDetected) {
  std::vector<double> probs(100, 0.9);
  std::vector<int> truth(100, 0);  // all wrong
  auto report = CalibrationReport::Build(probs, truth, 10);
  EXPECT_GT(report.MaxCalibrationGap(), 0.8);
}

TEST(CalibrationTest, UnknownTruthIgnored) {
  std::vector<double> probs = {0.5, 0.5, 0.5};
  std::vector<int> truth = {-1, -1, -1};
  auto report = CalibrationReport::Build(probs, truth, 10);
  EXPECT_DOUBLE_EQ(report.MaxCalibrationGap(), 0.0);  // no labeled buckets
}

TEST(ErrorAnalysisTest, MetricsAndBuckets) {
  std::unordered_set<Tuple, TupleHash> truth;
  truth.insert(Tuple({Value::Int(1)}));
  truth.insert(Tuple({Value::Int(2)}));
  truth.insert(Tuple({Value::Int(3)}));

  std::vector<std::pair<Tuple, double>> marginals = {
      {Tuple({Value::Int(1)}), 0.95},  // TP
      {Tuple({Value::Int(2)}), 0.40},  // FN (below threshold)
      {Tuple({Value::Int(9)}), 0.99},  // FP
  };
  // Int(3) never became a candidate -> FN via candidate-generation miss.
  auto analysis = ErrorAnalysis::Build(
      marginals, 0.9, truth,
      [](const Tuple&, bool is_fp) {
        return is_fp ? std::string("bad extraction") : std::string("missed");
      });
  EXPECT_EQ(analysis.metrics().true_positives, 1u);
  EXPECT_EQ(analysis.metrics().false_positives, 1u);
  EXPECT_EQ(analysis.metrics().false_negatives, 2u);
  ASSERT_EQ(analysis.buckets().size(), 2u);
  EXPECT_EQ(analysis.buckets()[0].tag, "missed");  // 2 errors, sorted first
  EXPECT_EQ(analysis.buckets()[0].count, 2u);
  EXPECT_FALSE(analysis.ToText().empty());
}

TEST(ErrorAnalysisTest, PerfectExtractionHasNoBuckets) {
  std::unordered_set<Tuple, TupleHash> truth;
  truth.insert(Tuple({Value::Int(1)}));
  std::vector<std::pair<Tuple, double>> marginals = {{Tuple({Value::Int(1)}), 0.99}};
  auto analysis = ErrorAnalysis::Build(marginals, 0.9, truth,
                                       [](const Tuple&, bool) { return "x"; });
  EXPECT_DOUBLE_EQ(analysis.metrics().f1, 1.0);
  EXPECT_TRUE(analysis.buckets().empty());
}

}  // namespace
}  // namespace dd
