#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "factor/graph.h"
#include "inference/gibbs.h"
#include "inference/hogwild.h"
#include "inference/numa.h"
#include "util/rng.h"

namespace dd {
namespace {

uint64_t Bits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

/// Random graph stressing every compiled-op shape: all five factor
/// functions, mixed polarities, variables repeated inside one factor
/// (including both polarities, the provably-zero drop cases, and v in
/// both body and head of an imply), fixed weights, and exact-zero
/// weights.
FactorGraph AdversarialGraph(uint64_t seed, int num_vars, int num_factors) {
  Rng rng(seed);
  FactorGraph g;
  for (int v = 0; v < num_vars; ++v) {
    g.AddVariable(rng.NextBernoulli(0.15), rng.NextBernoulli(0.5));
  }
  int num_weights = 4 + static_cast<int>(rng.NextBounded(5));
  for (int w = 0; w < num_weights; ++w) {
    double value = rng.NextBernoulli(0.15) ? 0.0 : rng.NextGaussian() * 1.5;
    g.AddWeight(value, rng.NextBernoulli(0.3), "w" + std::to_string(w));
  }
  const FactorFunc funcs[] = {FactorFunc::kIsTrue, FactorFunc::kAnd, FactorFunc::kOr,
                              FactorFunc::kImply, FactorFunc::kEqual};
  for (int f = 0; f < num_factors; ++f) {
    FactorFunc func = funcs[rng.NextBounded(5)];
    size_t arity = func == FactorFunc::kIsTrue ? 1
                   : func == FactorFunc::kEqual ? 2
                                                : 1 + rng.NextBounded(4);
    std::vector<Literal> lits;
    for (size_t i = 0; i < arity; ++i) {
      uint32_t var = static_cast<uint32_t>(rng.NextBounded(num_vars));
      // Frequently reuse an earlier literal's variable so one factor
      // holds the same variable several times, with independent
      // polarities (the kernel compiler's drop/fallback cases).
      if (i > 0 && rng.NextBernoulli(0.35)) {
        lits.push_back({lits[rng.NextBounded(i)].var, rng.NextBernoulli(0.5)});
      } else {
        lits.push_back({var, rng.NextBernoulli(0.7)});
      }
    }
    EXPECT_TRUE(
        g.AddFactor(func, static_cast<uint32_t>(rng.NextBounded(num_weights)), lits)
            .ok());
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

class CompiledKernelProperty : public ::testing::TestWithParam<uint64_t> {};

/// The tentpole invariant: for every variable and random assignment, the
/// compiled stream produces the exact bit pattern of the interpreted
/// CSR walk. EXPECT_EQ on doubles would accept -0.0 == 0.0 and miss
/// rounding drift; comparing bit patterns does not.
TEST_P(CompiledKernelProperty, DeltaMatchesInterpretedBitForBit) {
  const uint64_t seed = GetParam();
  FactorGraph g = AdversarialGraph(seed, 24, 160);
  Rng rng(seed ^ 0xabcdef);
  const size_t nv = g.num_variables();
  std::vector<uint8_t> assignment(nv);
  for (int round = 0; round < 50; ++round) {
    for (size_t v = 0; v < nv; ++v) assignment[v] = rng.NextBernoulli(0.5) ? 1 : 0;
    for (uint32_t v = 0; v < nv; ++v) {
      const double interpreted = g.PotentialDelta(v, assignment.data());
      const double compiled = g.PotentialDeltaCompiled(v, assignment.data());
      ASSERT_EQ(Bits(interpreted), Bits(compiled))
          << "seed=" << seed << " v=" << v << " round=" << round
          << " interpreted=" << interpreted << " compiled=" << compiled;
    }
  }
}

/// Mutating weights after Finalize (what every learning epoch does) must
/// keep the compiled stream in sync — including weights that were folded
/// into a variable's bias constant.
TEST_P(CompiledKernelProperty, DeltaMatchesAfterWeightUpdates) {
  const uint64_t seed = GetParam();
  FactorGraph g = AdversarialGraph(seed, 24, 160);
  Rng rng(seed ^ 0x5eed);
  const size_t nv = g.num_variables();
  std::vector<uint8_t> assignment(nv);
  for (int round = 0; round < 10; ++round) {
    for (uint32_t w = 0; w < g.num_weights(); ++w) {
      g.set_weight_value(w, rng.NextGaussian());
    }
    for (size_t v = 0; v < nv; ++v) assignment[v] = rng.NextBernoulli(0.5) ? 1 : 0;
    for (uint32_t v = 0; v < nv; ++v) {
      ASSERT_EQ(Bits(g.PotentialDelta(v, assignment.data())),
                Bits(g.PotentialDeltaCompiled(v, assignment.data())))
          << "seed=" << seed << " v=" << v << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledKernelProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(CompiledKernels, SetWeightValueSyncsColdMirror) {
  FactorGraph g;
  g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "learned");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{0, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  g.set_weight_value(w, -2.5);
  EXPECT_EQ(g.weight_value(w), -2.5);
  EXPECT_EQ(g.weight(w).value, -2.5);  // io/diagnostics read the struct
  EXPECT_EQ(g.weight_values()[w], -2.5);
}

TEST(CompiledKernels, FixedWeightBiasRecompiles) {
  // v0's whole adjacency is fixed-weight unary factors, so its delta
  // folds to a constant. Overwriting one of those weights must trigger a
  // recompile, not leave a stale bias.
  FactorGraph g;
  g.AddVariable();
  uint32_t w0 = g.AddWeight(0.75, true, "prior0");
  uint32_t w1 = g.AddWeight(-0.25, true, "prior1");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w0, {{0, true}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w1, {{0, false}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  uint8_t assignment = 0;
  // Folded: the stream for v0 should be empty, delta = 0.75 + 0.25.
  EXPECT_EQ(g.kernel_stream_words(), 0u);
  EXPECT_EQ(Bits(g.PotentialDeltaCompiled(0, &assignment)),
            Bits(g.PotentialDelta(0, &assignment)));
  g.set_weight_value(w0, 3.5);
  EXPECT_EQ(Bits(g.PotentialDeltaCompiled(0, &assignment)),
            Bits(g.PotentialDelta(0, &assignment)));
  EXPECT_EQ(g.PotentialDeltaCompiled(0, &assignment), 3.5 + 0.25);
}

// --- End-to-end: every sampler's chain is unchanged by the compiled path ---

FactorGraph SamplerGraph(uint64_t seed) {
  return AdversarialGraph(seed, 40, 200);
}

TEST(CompiledSamplers, GibbsMarginalsIdentical) {
  FactorGraph g = SamplerGraph(7);
  GibbsOptions opts;
  opts.burn_in = 20;
  opts.num_samples = 80;
  opts.seed = 99;
  opts.use_compiled = true;
  GibbsSampler compiled(&g, opts);
  auto m1 = compiled.RunMarginals();
  ASSERT_TRUE(m1.ok());
  opts.use_compiled = false;
  GibbsSampler interpreted(&g, opts);
  auto m2 = interpreted.RunMarginals();
  ASSERT_TRUE(m2.ok());
  // Same RNG stream + bit-identical deltas => bit-identical chains.
  EXPECT_EQ(*m1, *m2);
}

TEST(CompiledSamplers, HogwildSingleThreadIdentical) {
  FactorGraph g = SamplerGraph(11);
  ParallelGibbsOptions opts;
  opts.num_threads = 1;  // deterministic: no races to perturb the chain
  opts.burn_in = 10;
  opts.num_samples = 40;
  opts.seed = 5;
  opts.use_compiled = true;
  auto m1 = HogwildSampler(&g, opts).RunMarginals();
  ASSERT_TRUE(m1.ok());
  opts.use_compiled = false;
  auto m2 = HogwildSampler(&g, opts).RunMarginals();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(*m1, *m2);
}

TEST(CompiledSamplers, LockingSingleThreadIdentical) {
  FactorGraph g = SamplerGraph(13);
  ParallelGibbsOptions opts;
  opts.num_threads = 1;
  opts.burn_in = 10;
  opts.num_samples = 40;
  opts.seed = 6;
  opts.use_compiled = true;
  auto m1 = LockingSampler(&g, opts).RunMarginals();
  ASSERT_TRUE(m1.ok());
  opts.use_compiled = false;
  auto m2 = LockingSampler(&g, opts).RunMarginals();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(*m1, *m2);
}

TEST(CompiledSamplers, NumaAwareIdentical) {
  // Aware mode runs independent per-node chains, so it is deterministic
  // for any node count.
  FactorGraph g = SamplerGraph(17);
  NumaTopology topo;
  topo.num_nodes = 3;
  NumaSampler compiled(&g, topo, /*burn_in=*/10, /*num_samples=*/30, /*seed=*/4,
                       /*use_compiled=*/true);
  auto s1 = compiled.RunAware();
  ASSERT_TRUE(s1.ok());
  NumaSampler interpreted(&g, topo, 10, 30, 4, /*use_compiled=*/false);
  auto s2 = interpreted.RunAware();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->marginals, s2->marginals);
}

TEST(CompiledSamplers, NumaUnawareSingleNodeIdentical) {
  FactorGraph g = SamplerGraph(19);
  NumaTopology topo;
  topo.num_nodes = 1;
  topo.cores_per_node = 1;
  NumaSampler compiled(&g, topo, 10, 30, 4, true);
  auto s1 = compiled.RunUnaware();
  ASSERT_TRUE(s1.ok());
  NumaSampler interpreted(&g, topo, 10, 30, 4, false);
  auto s2 = interpreted.RunUnaware();
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->marginals, s2->marginals);
}

// --- Satellite guards: num_samples == 0 must be rejected, not divide ---

TEST(SamplerGuards, ZeroSamplesRejectedEverywhere) {
  FactorGraph g = SamplerGraph(23);
  ParallelGibbsOptions popts;
  popts.num_samples = 0;
  EXPECT_FALSE(HogwildSampler(&g, popts).RunMarginals().ok());
  EXPECT_FALSE(LockingSampler(&g, popts).RunMarginals().ok());
  NumaTopology topo;
  NumaSampler numa(&g, topo, 10, 0, 4);
  EXPECT_FALSE(numa.RunAware().ok());
  EXPECT_FALSE(numa.RunUnaware().ok());
}

TEST(SamplerGuards, NumaAwareHonorsSampleBudgetWithRemainder) {
  // 10 samples over 4 nodes: nodes get 3/3/2/2. Every node pays its own
  // burn-in, so total steps = (nodes * burn_in + num_samples) * nfree.
  FactorGraph g = SamplerGraph(29);
  size_t nfree = 0;
  for (uint32_t v = 0; v < g.num_variables(); ++v) {
    if (!g.is_evidence(v)) ++nfree;
  }
  NumaTopology topo;
  topo.num_nodes = 4;
  const int burn_in = 5, num_samples = 10;
  NumaSampler sampler(&g, topo, burn_in, num_samples, 4);
  auto stats = sampler.RunAware();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->steps,
            static_cast<uint64_t>(topo.num_nodes * burn_in + num_samples) * nfree);
}

TEST(SamplerGuards, NumaAwareMoreNodesThanSamples) {
  // 2 samples over 4 nodes: two nodes get one sample each, two sit idle.
  FactorGraph g = SamplerGraph(31);
  size_t nfree = 0;
  for (uint32_t v = 0; v < g.num_variables(); ++v) {
    if (!g.is_evidence(v)) ++nfree;
  }
  NumaTopology topo;
  topo.num_nodes = 4;
  NumaSampler sampler(&g, topo, /*burn_in=*/5, /*num_samples=*/2, 4);
  auto stats = sampler.RunAware();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->steps, static_cast<uint64_t>(2 * 5 + 2) * nfree);
  for (double m : stats->marginals) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

}  // namespace
}  // namespace dd
