#include <gtest/gtest.h>

#include "ddlog/lexer.h"
#include "ddlog/parser.h"

namespace dd {
namespace {

constexpr char kSpouseProgram[] = R"(
# Schema (Example 3.1 of the paper).
PersonCandidate(s: int, m: int).
Sentence(s: int, content: text).
Mention(s: int, m: int).
EL(m: int, e: text).
Married(e1: text, e2: text).
MarriedCandidate?(m1: int, m2: int).
MarriedCandidate_Ev(m1: int, m2: int, label: bool).

// R1: candidate mapping.
MarriedCandidate(m1, m2) :- PersonCandidate(s, m1), PersonCandidate(s, m2), m1 < m2.

// FE1: feature rule with UDF weight (Example 3.2).
MarriedCandidate(m1, m2) :- MarriedCandidate(m1, m2), Mention(s, m1), Mention(s, m2),
                            Sentence(s, sent) weight = phrase(m1, m2, sent).

// S1: distant supervision (Example 3.3).
MarriedCandidate_Ev(m1, m2, true) :- MarriedCandidate(m1, m2), EL(m1, e1), EL(m2, e2),
                                     Married(e1, e2).
)";

TEST(LexerTest, TokenKinds) {
  auto tokens = LexDdlog("Foo(x, 42, \"bar\", true) :- !Baz(x), x != 3.5.");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokKind> kinds;
  for (const Tok& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokKind::kIdent);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kColonDash), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kBang), kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokKind::kNeq), kinds.end());
  EXPECT_EQ(kinds.back(), TokKind::kEof);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = LexDdlog("3.14 42 -7 \"hello\\nworld\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 3.14);
  EXPECT_FALSE((*tokens)[0].is_integer);
  EXPECT_TRUE((*tokens)[1].is_integer);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, -7.0);
  EXPECT_EQ((*tokens)[3].text, "hello\nworld");
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = LexDdlog("# a comment\nFoo // trailing\nBar");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // Foo, Bar, EOF
  EXPECT_EQ((*tokens)[0].text, "Foo");
  EXPECT_EQ((*tokens)[1].text, "Bar");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto tokens = LexDdlog("\"oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = LexDdlog("a\n  b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[1].line, 2);
  EXPECT_EQ((*tokens)[1].column, 3);
}

TEST(ParserTest, ParsesPaperProgram) {
  auto program = ParseDdlog(kSpouseProgram);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->declarations.size(), 7u);
  EXPECT_EQ(program->rules.size(), 3u);

  const RelationDecl* mc = program->FindDecl("MarriedCandidate");
  ASSERT_NE(mc, nullptr);
  EXPECT_TRUE(mc->is_query);
  EXPECT_FALSE(program->FindDecl("Sentence")->is_query);

  EXPECT_EQ(program->rules[0].kind, RuleKind::kDerivation);
  EXPECT_EQ(program->rules[0].rule.conditions.size(), 1u);
  EXPECT_EQ(program->rules[1].kind, RuleKind::kFeature);
  ASSERT_TRUE(program->rules[1].weight.has_value());
  EXPECT_EQ(program->rules[1].weight->kind, WeightSpec::Kind::kUdf);
  EXPECT_EQ(program->rules[1].weight->udf_name, "phrase");
  EXPECT_EQ(program->rules[1].weight->args.size(), 3u);
  // Supervision rule: plain derivation into the _Ev relation.
  EXPECT_EQ(program->rules[2].kind, RuleKind::kDerivation);
  EXPECT_EQ(program->rules[2].rule.head.relation, "MarriedCandidate_Ev");
  // The bool constant in the head.
  EXPECT_EQ(program->rules[2].rule.head.terms[2].constant, Value::Bool(true));
}

TEST(ParserTest, AnalyzesPaperProgram) {
  auto program = ParseDdlog(kSpouseProgram);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(AnalyzeProgram(*program).ok());
}

TEST(ParserTest, CorrelationRule) {
  auto program = ParseDdlog(R"(
    A?(x: int).
    B?(x: int).
    Link(x: int, y: int).
    A(x) => B(y) :- Link(x, y) weight = 1.5.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 1u);
  EXPECT_EQ(program->rules[0].kind, RuleKind::kCorrelation);
  EXPECT_EQ(program->rules[0].implied_head.relation, "B");
  ASSERT_TRUE(program->rules[0].weight.has_value());
  EXPECT_EQ(program->rules[0].weight->kind, WeightSpec::Kind::kFixed);
  EXPECT_DOUBLE_EQ(program->rules[0].weight->fixed_value, 1.5);
  EXPECT_TRUE(AnalyzeProgram(*program).ok());
}

TEST(ParserTest, LearnableWeight) {
  auto program = ParseDdlog(R"(
    T(x: int).
    Q?(x: int).
    Q(x) :- T(x) weight = ?.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules[0].weight->kind, WeightSpec::Kind::kLearnable);
}

TEST(ParserTest, VariableListWeight) {
  auto program = ParseDdlog(R"(
    T(x: int, y: text).
    Q?(x: int).
    Q(x) :- T(x, y) weight = y.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->rules[0].weight->kind, WeightSpec::Kind::kVariables);
  EXPECT_EQ(program->rules[0].weight->args, std::vector<std::string>{"y"});
}

TEST(ParserTest, SyntaxErrorsCarryPositions) {
  auto program = ParseDdlog("Foo(x :- Bar(x).");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kParseError);
  EXPECT_NE(program.status().message().find("line 1"), std::string::npos);
}

TEST(AnalyzerTest, UndeclaredRelationRejected) {
  auto program = ParseDdlog("Q(x) :- Mystery(x).");
  ASSERT_TRUE(program.ok());
  Status st = AnalyzeProgram(*program);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("undeclared"), std::string::npos);
}

TEST(AnalyzerTest, ArityMismatchRejected) {
  auto program = ParseDdlog(R"(
    T(x: int, y: int).
    Q(x: int).
    Q(x) :- T(x).
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(AnalyzeProgram(*program).ok());
}

TEST(AnalyzerTest, ConstantTypeMismatchRejected) {
  auto program = ParseDdlog(R"(
    T(x: int).
    Q(x: int).
    Q(x) :- T(x), x = "nope".
  )");
  ASSERT_TRUE(program.ok());
  // Condition constants are not type-checked against columns (values are
  // dynamically typed), but atom constants are:
  auto program2 = ParseDdlog(R"(
    T(x: int).
    Q(x: int).
    Q(x) :- T("nope").
  )");
  ASSERT_TRUE(program2.ok());
  EXPECT_EQ(AnalyzeProgram(*program2).code(), StatusCode::kTypeError);
}

TEST(AnalyzerTest, FeatureRuleHeadMustBeQuery) {
  auto program = ParseDdlog(R"(
    T(x: int).
    Q(x: int).
    Q(x) :- T(x) weight = ?.
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(AnalyzeProgram(*program).ok());
}

TEST(AnalyzerTest, EvidenceSchemaChecked) {
  // Evidence relation missing the bool column.
  auto program = ParseDdlog(R"(
    Q?(x: int).
    Q_Ev(x: int).
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(AnalyzeProgram(*program).ok());

  auto good = ParseDdlog(R"(
    Q?(x: int).
    Q_Ev(x: int, label: bool).
  )");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(AnalyzeProgram(*good).ok());
}

TEST(AnalyzerTest, EvidenceTargetMustExistAndBeQuery) {
  auto no_target = ParseDdlog("Lonely_Ev(x: int, l: bool).");
  ASSERT_TRUE(no_target.ok());
  EXPECT_FALSE(AnalyzeProgram(*no_target).ok());

  auto not_query = ParseDdlog(R"(
    Q(x: int).
    Q_Ev(x: int, l: bool).
  )");
  ASSERT_TRUE(not_query.ok());
  EXPECT_FALSE(AnalyzeProgram(*not_query).ok());
}

TEST(AnalyzerTest, WeightArgMustBeBound) {
  auto program = ParseDdlog(R"(
    T(x: int).
    Q?(x: int).
    Q(x) :- T(x) weight = f(zzz).
  )");
  ASSERT_TRUE(program.ok());
  Status st = AnalyzeProgram(*program);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("zzz"), std::string::npos);
}

TEST(AnalyzerTest, DuplicateDeclarationRejected) {
  auto program = ParseDdlog("T(x: int). T(y: text).");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(AnalyzeProgram(*program).ok());
}

TEST(AnalyzerTest, UnsafeRuleRejected) {
  auto program = ParseDdlog(R"(
    T(x: int).
    Q(x: int, y: int).
    Q(x, y) :- T(x).
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(AnalyzeProgram(*program).ok());
}

}  // namespace
}  // namespace dd
