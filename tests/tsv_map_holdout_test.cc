// Tests for the TSV bridge, MAP inference, and holdout calibration.

#include <gtest/gtest.h>

#include <cstdio>

#include "inference/exact.h"
#include "inference/map.h"
#include "storage/tsv.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

Schema MixedSchema() {
  return Schema({{"id", ValueType::kInt},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble},
                 {"flag", ValueType::kBool}});
}

TEST(TsvTest, RoundTrip) {
  Table t("t", MixedSchema());
  ASSERT_TRUE(t.Insert(Tuple({Value::Int(1), Value::String("plain"),
                              Value::Double(1.5), Value::Bool(true)}))
                  .ok());
  ASSERT_TRUE(t.Insert(Tuple({Value::Int(-2), Value::String("tab\there\nand nl\\"),
                              Value::Null(), Value::Bool(false)}))
                  .ok());
  std::string tsv = TableToTsv(t);

  Table back("back", MixedSchema());
  auto loaded = LoadTsv(&back, tsv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  EXPECT_TRUE(back.Contains(Tuple({Value::Int(1), Value::String("plain"),
                                   Value::Double(1.5), Value::Bool(true)})));
  EXPECT_TRUE(back.Contains(Tuple({Value::Int(-2),
                                   Value::String("tab\there\nand nl\\"),
                                   Value::Null(), Value::Bool(false)})));
}

TEST(TsvTest, DuplicatesCollapse) {
  Table t("t", Schema({{"x", ValueType::kInt}}));
  auto loaded = LoadTsv(&t, "1\n1\n2\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(TsvTest, ParseErrorsIdentified) {
  Table t("t", Schema({{"x", ValueType::kInt}, {"y", ValueType::kDouble}}));
  auto bad_arity = LoadTsv(&t, "1\t2.0\n3\n");
  EXPECT_FALSE(bad_arity.ok());
  EXPECT_NE(bad_arity.status().message().find("line 2"), std::string::npos);
  auto bad_int = LoadTsv(&t, "xyz\t2.0\n");
  EXPECT_FALSE(bad_int.ok());
  auto bad_bool_table = Table("b", Schema({{"f", ValueType::kBool}}));
  EXPECT_FALSE(LoadTsv(&bad_bool_table, "maybe\n").ok());
}

TEST(TsvTest, FileRoundTrip) {
  Table t("t", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(t.Insert(Tuple({Value::Int(7)})).ok());
  std::string path = "/tmp/dd_tsv_test.tsv";
  ASSERT_TRUE(WriteTsvFile(t, path).ok());
  Table back("back", t.schema());
  auto loaded = LoadTsvFile(&back, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(back.size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTsvFile(&back, "/tmp/definitely_missing_dd.tsv").ok());
}

/// Exact MAP by enumeration (test oracle).
double ExactMapLogPotential(const FactorGraph& graph) {
  const size_t nv = graph.num_variables();
  std::vector<uint8_t> assignment(nv, 0);
  std::vector<uint32_t> free_vars;
  for (uint32_t v = 0; v < nv; ++v) {
    if (graph.is_evidence(v)) {
      assignment[v] = graph.evidence_value(v) ? 1 : 0;
    } else {
      free_vars.push_back(v);
    }
  }
  double best = -1e300;
  for (uint64_t world = 0; world < (1ULL << free_vars.size()); ++world) {
    for (size_t i = 0; i < free_vars.size(); ++i) {
      assignment[free_vars[i]] = (world >> i) & 1;
    }
    best = std::max(best, graph.LogPotential(assignment.data()));
  }
  return best;
}

class MapOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MapOracleTest, FindsOptimalWorld) {
  SyntheticGraphOptions options;
  options.num_variables = 14;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.15;
  options.seed = GetParam();
  FactorGraph graph = MakeRandomGraph(options);

  MapOptions map_options;
  map_options.sweeps = 300;
  map_options.restarts = 4;
  auto result = MapInference(graph, map_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double exact = ExactMapLogPotential(graph);
  // Annealing + greedy polish should land on (or within a hair of) the
  // global optimum at this size.
  EXPECT_NEAR(result->log_potential, exact, 1e-9) << "seed " << GetParam();
  // Evidence stays clamped.
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (graph.is_evidence(v)) {
      EXPECT_EQ(result->assignment[v], graph.evidence_value(v) ? 1 : 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapOracleTest, ::testing::Values(31, 32, 33, 34, 35));

TEST(MapTest, InvalidOptionsRejected) {
  FactorGraph graph = MakeChainGraph(5, 1.0, 1);
  MapOptions options;
  options.sweeps = 0;
  EXPECT_FALSE(MapInference(graph, options).ok());
  options.sweeps = 10;
  options.initial_temperature = -1;
  EXPECT_FALSE(MapInference(graph, options).ok());
}

TEST(HoldoutTest, PipelineCalibration) {
  SpouseCorpusOptions corpus_options;
  corpus_options.num_documents = 120;
  corpus_options.seed = 61;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_options);

  PipelineOptions options;
  options.learn.epochs = 150;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.holdout_fraction = 0.25;
  options.strategy = PipelineOptions::Strategy::kSampling;

  auto pipeline = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Run().ok());

  // A quarter of the labels were held out of training.
  const GroundingStats& stats = (*pipeline)->grounding_stats();
  EXPECT_GT(stats.num_holdout, 0u);
  EXPECT_GT(stats.num_evidence, stats.num_holdout);

  auto calibration = (*pipeline)->Calibration("MarriedMention");
  ASSERT_TRUE(calibration.ok()) << calibration.status().ToString();
  EXPECT_EQ(calibration->num_test, stats.num_holdout);
  EXPECT_GT(calibration->num_train, 0u);
  // The held-out items were never clamped, yet the model should be well
  // calibrated on them (generalization, not memorization).
  EXPECT_LT(calibration->test.MaxCalibrationGap(), 0.35);
  EXPECT_GT(calibration->test.ExtremeMassFraction(), 0.5);

  // Without holdout the test panel is empty.
  options.holdout_fraction = 0.0;
  auto no_holdout = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
  ASSERT_TRUE(no_holdout.ok());
  ASSERT_TRUE((*no_holdout)->Run().ok());
  auto empty_cal = (*no_holdout)->Calibration("MarriedMention");
  ASSERT_TRUE(empty_cal.ok());
  EXPECT_EQ(empty_cal->num_test, 0u);
}

}  // namespace
}  // namespace dd
