#include <gtest/gtest.h>

#include "factor/io.h"
#include "inference/exact.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"

namespace dd {
namespace {

TEST(FactorIoTest, RoundTripSmallGraph) {
  FactorGraph g;
  uint32_t a = g.AddVariable();
  uint32_t b = g.AddVariable(true, true);
  uint32_t w1 = g.AddWeight(1.5, false, "feature one");
  uint32_t w2 = g.AddWeight(-0.25, true, "fixed prior");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kImply, w1, {{a, true}, {b, false}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w2, {{a, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());

  std::string text = SerializeGraph(g);
  auto parsed = DeserializeGraph(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->num_variables(), 2u);
  EXPECT_EQ(parsed->num_weights(), 2u);
  EXPECT_EQ(parsed->num_factors(), 2u);
  EXPECT_FALSE(parsed->is_evidence(a));
  EXPECT_TRUE(parsed->is_evidence(b));
  EXPECT_TRUE(parsed->evidence_value(b));
  EXPECT_DOUBLE_EQ(parsed->weight(w1).value, 1.5);
  EXPECT_FALSE(parsed->weight(w1).is_fixed);
  EXPECT_EQ(parsed->weight(w1).description, "feature one");
  EXPECT_TRUE(parsed->weight(w2).is_fixed);
  EXPECT_EQ(parsed->factor_func(0), FactorFunc::kImply);
  size_t arity = 0;
  const Literal* lits = parsed->factor_literals(0, &arity);
  ASSERT_EQ(arity, 2u);
  EXPECT_EQ(lits[0].var, a);
  EXPECT_TRUE(lits[0].is_positive);
  EXPECT_EQ(lits[1].var, b);
  EXPECT_FALSE(lits[1].is_positive);
}

// Property: round-tripped random graphs have identical exact marginals.
class IoRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IoRoundTripTest, PreservesDistribution) {
  SyntheticGraphOptions options;
  options.num_variables = 10;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  options.seed = GetParam();
  FactorGraph g = MakeRandomGraph(options);

  auto parsed = DeserializeGraph(SerializeGraph(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  auto original = ExactMarginals(g);
  auto round_tripped = ExactMarginals(*parsed);
  ASSERT_TRUE(original.ok() && round_tripped.ok());
  ASSERT_EQ(original->size(), round_tripped->size());
  for (size_t v = 0; v < original->size(); ++v) {
    EXPECT_NEAR((*original)[v], (*round_tripped)[v], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The binary GRBN/DICT snapshot sections (the default since DESIGN.md §12)
// must describe exactly the same graph as the ddfg text oracle.
TEST_P(IoRoundTripTest, BinarySnapshotMatchesTextOracle) {
  SyntheticGraphOptions options;
  options.num_variables = 10;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  options.seed = GetParam();

  GraphSnapshot snap;
  snap.has_graph = true;
  snap.graph = MakeRandomGraph(options);

  auto decoded = DecodeGraphSnapshot(EncodeGraphSnapshot(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->has_graph);
  EXPECT_FALSE(decoded->text_graph);
  // The decoded graph serializes to the exact text the oracle produces.
  EXPECT_EQ(SerializeGraph(decoded->graph), SerializeGraph(snap.graph));

  snap.text_graph = true;
  auto from_text = DecodeGraphSnapshot(EncodeGraphSnapshot(snap));
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_TRUE(from_text->text_graph);
  EXPECT_EQ(SerializeGraph(from_text->graph), SerializeGraph(decoded->graph));
}

TEST(FactorIoTest, MalformedInputsRejected) {
  EXPECT_FALSE(DeserializeGraph("").ok());
  EXPECT_FALSE(DeserializeGraph("bogus 1\n").ok());
  EXPECT_FALSE(DeserializeGraph("ddfg 2\n").ok());  // wrong version
  // Missing W section.
  EXPECT_FALSE(DeserializeGraph("ddfg 1\nV 2\n").ok());
  // Factor references unknown variable.
  EXPECT_FALSE(
      DeserializeGraph("ddfg 1\nV 1\nW 1\nw 0 1.0 0 x\nF 1\nf istrue 0 1 9 1\n")
          .ok());
  // Declared/actual factor count mismatch.
  EXPECT_FALSE(
      DeserializeGraph("ddfg 1\nV 1\nW 1\nw 0 1.0 0 x\nF 2\nf istrue 0 1 0 1\n")
          .ok());
  // Unknown factor function.
  EXPECT_FALSE(
      DeserializeGraph("ddfg 1\nV 1\nW 1\nw 0 1.0 0 x\nF 1\nf xor 0 1 0 1\n").ok());
  // Unknown record tag.
  EXPECT_FALSE(DeserializeGraph("ddfg 1\nV 0\nW 0\nz\n").ok());
}

TEST(FactorIoTest, CommentsAndBlankLinesIgnored) {
  auto parsed = DeserializeGraph(
      "# a comment\nddfg 1\n\nV 1\n# another\nW 1\nw 0 2.0 0 bias\nF 1\n"
      "f istrue 0 1 0 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_factors(), 1u);
}

}  // namespace
}  // namespace dd
