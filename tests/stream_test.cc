// Unit and concurrency tests for the streaming front end: the bounded
// byte queue, the record-aligned chunker, and the ingester's bounded-
// memory / backpressure / graceful-shutdown / fault-injection contracts
// (DESIGN.md §14).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "stream/ingester.h"
#include "stream/stream.h"
#include "util/bounded_queue.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace dd {
namespace {

using Queue = BoundedByteQueue<int>;

TEST(BoundedQueueTest, FifoAndOnPopRelease) {
  Queue q(100);
  EXPECT_EQ(q.Push(1, 10), Queue::PushResult::kOk);
  EXPECT_EQ(q.Push(2, 20), Queue::PushResult::kOk);
  EXPECT_EQ(q.bytes_in_flight(), 30u);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(q.bytes_in_flight(), 20u);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.bytes_in_flight(), 0u);
  EXPECT_EQ(q.peak_bytes(), 30u);
}

TEST(BoundedQueueTest, ShedPolicyDropsWhenFull) {
  Queue q(100, Queue::Policy::kShed);
  EXPECT_EQ(q.Push(1, 60), Queue::PushResult::kOk);
  EXPECT_EQ(q.Push(2, 60), Queue::PushResult::kShed);
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.shed_bytes(), 60u);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(q.Push(3, 60), Queue::PushResult::kOk);
}

TEST(BoundedQueueTest, CloseDrainsThenRefuses) {
  Queue q(100);
  EXPECT_EQ(q.Push(1, 10), Queue::PushResult::kOk);
  EXPECT_EQ(q.Push(2, 10), Queue::PushResult::kOk);
  q.Close();
  EXPECT_EQ(q.Push(3, 10), Queue::PushResult::kClosed);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

TEST(BoundedQueueTest, AbortDiscardsQueuedItems) {
  Queue q(100);
  EXPECT_EQ(q.Push(1, 10), Queue::PushResult::kOk);
  q.Abort();
  int v = 0;
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_EQ(q.bytes_in_flight(), 0u);
  // Release after abort is a harmless no-op (the account is gone).
  q.Release(10);
  EXPECT_EQ(q.bytes_in_flight(), 0u);
}

TEST(BoundedQueueTest, OversizedItemAdmittedAloneWhenIdle) {
  Queue q(10);
  EXPECT_EQ(q.Push(1, 100), Queue::PushResult::kOk);  // would deadlock otherwise
  EXPECT_EQ(q.peak_bytes(), 100u);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
}

TEST(BoundedQueueTest, BlockingProducerNeverExceedsBudget) {
  Queue q(100);
  std::thread consumer([&q] {
    int v = 0;
    while (q.Pop(&v)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(q.Push(i, 30), Queue::PushResult::kOk);
  }
  q.Close();
  consumer.join();
  // Items are 30 bytes against a 100-byte budget: at most 3 in flight.
  EXPECT_LE(q.peak_bytes(), 100u);
}

TEST(BoundedQueueTest, ExplicitReleaseHoldsBudgetPastPop) {
  BoundedByteQueue<int> q(100, Queue::Policy::kBlock,
                          Queue::ReleaseMode::kExplicit);
  EXPECT_EQ(q.Push(1, 80), Queue::PushResult::kOk);
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(q.bytes_in_flight(), 80u);  // pop did not release

  std::thread producer([&q] {
    // Blocks until the consumer releases the first item's bytes.
    EXPECT_EQ(q.Push(2, 80), Queue::PushResult::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.Release(80);
  producer.join();
  EXPECT_EQ(q.bytes_in_flight(), 80u);
  q.Abort();
}

std::string MakeLines(int n, const std::string& prefix = "line") {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += StrFormat("%s-%04d", prefix.c_str(), i);
    text += '\n';
  }
  return text;
}

std::vector<Chunk> ChunkAll(const std::string& text, size_t chunk_bytes) {
  StringSource source(text);
  ChunkerOptions options;
  options.chunk_bytes = chunk_bytes;
  Chunker chunker(&source, options);
  std::vector<Chunk> chunks;
  Chunk chunk;
  for (;;) {
    auto more = chunker.Next(&chunk);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    chunks.push_back(chunk);
  }
  return chunks;
}

TEST(ChunkerTest, ChunksAreRecordAlignedAndLossless) {
  const std::string text = MakeLines(100);
  auto chunks = ChunkAll(text, 64);
  ASSERT_GT(chunks.size(), 1u);
  std::string rejoined;
  uint64_t records = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].seq, i);
    EXPECT_EQ(chunks[i].first_record, records);
    EXPECT_EQ(chunks[i].bytes.back(), '\n');  // record-aligned
    records += chunks[i].num_records;
    rejoined += chunks[i].bytes;
  }
  EXPECT_EQ(rejoined, text);  // lossless decomposition
  EXPECT_EQ(records, 100u);
}

TEST(ChunkerTest, RecordNumberingIndependentOfChunkSize) {
  const std::string text = MakeLines(57);
  for (size_t chunk_bytes : {16u, 100u, 1024u, 1u << 20}) {
    auto chunks = ChunkAll(text, chunk_bytes);
    uint64_t records = 0;
    std::string rejoined;
    for (const Chunk& c : chunks) {
      EXPECT_EQ(c.first_record, records);
      records += c.num_records;
      rejoined += c.bytes;
    }
    EXPECT_EQ(records, 57u) << "chunk_bytes=" << chunk_bytes;
    EXPECT_EQ(rejoined, text);
  }
}

TEST(ChunkerTest, FinalRecordWithoutNewline) {
  std::string text = "aaa\nbbb\nccc";  // unterminated tail
  auto chunks = ChunkAll(text, 4);
  uint64_t records = 0;
  std::string rejoined;
  for (const Chunk& c : chunks) {
    records += c.num_records;
    rejoined += c.bytes;
  }
  EXPECT_EQ(records, 3u);
  EXPECT_EQ(rejoined, text);
}

TEST(ChunkerTest, EmptyStream) {
  StringSource source("");
  Chunker chunker(&source, ChunkerOptions());
  Chunk chunk;
  auto more = chunker.Next(&chunk);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(ChunkerTest, OverlongRecordIsParseError) {
  std::string text(1000, 'x');  // a single 1000-byte record, no '\n'
  StringSource source(text);
  ChunkerOptions options;
  options.chunk_bytes = 64;
  options.max_record_bytes = 256;
  Chunker chunker(&source, options);
  Chunk chunk;
  auto more = chunker.Next(&chunk);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kParseError);
}

/// Extractor that emits one "R"(index) tuple per record.
StreamExtractor IndexExtractor() {
  return [](const StreamRecord& record, TupleEmitter* emitter) -> Status {
    emitter->Emit("R", Tuple({Value::Int(static_cast<int64_t>(record.index))}));
    return Status::OK();
  };
}

TEST(StreamIngesterTest, ExtractsEveryRecordExactlyOnce) {
  const int kRecords = 500;
  const std::string text = MakeLines(kRecords);
  StreamOptions options;
  options.chunk_bytes = 128;
  options.num_workers = 4;
  StreamIngester ingester(options, IndexExtractor());
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester.Ingest(&source, &sink);
  ASSERT_TRUE(status.ok()) << status.ToString();

  const auto& stats = ingester.stats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(stats.bytes_in, text.size());
  EXPECT_EQ(stats.merged_chunks, stats.chunks);
  EXPECT_EQ(stats.records_quarantined, 0u);
  EXPECT_FALSE(stats.stopped_early);

  const auto& deltas = sink.deltas();
  ASSERT_EQ(deltas.count("R"), 1u);
  const DeltaSet& r = deltas.at("R");
  EXPECT_EQ(r.size(), static_cast<size_t>(kRecords));
  for (const auto& [tuple, count] : r) {
    EXPECT_EQ(count, 1) << tuple.at(0).AsInt();
  }
}

TEST(StreamIngesterTest, BackpressureBoundsInFlightBytes) {
  const std::string text = MakeLines(400);
  StreamOptions options;
  options.chunk_bytes = 128;
  options.byte_budget = 512;  // ~4 chunks
  options.num_workers = 2;
  // A deliberately slow consumer: the producer reads far faster than
  // extraction drains, so without backpressure in-flight bytes would
  // grow to the whole stream.
  StreamIngester ingester(
      options, [](const StreamRecord& record, TupleEmitter* emitter) -> Status {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        emitter->Emit("R",
                      Tuple({Value::Int(static_cast<int64_t>(record.index))}));
        return Status::OK();
      });
  StringSource source(text);
  DeltaStreamSink sink;
  ASSERT_TRUE(ingester.Ingest(&source, &sink).ok());
  const auto& stats = ingester.stats();
  EXPECT_EQ(stats.records, 400u);
  // The bounded-memory contract: peak in-flight source bytes never
  // exceed the budget (chunks here are all smaller than the budget).
  EXPECT_LE(stats.peak_in_flight_bytes, stats.byte_budget);
  EXPECT_GT(stats.peak_in_flight_bytes, 0u);
}

TEST(StreamIngesterTest, ShedPolicyDropsChunksNotRecordsWithin) {
  const std::string text = MakeLines(400);
  StreamOptions options;
  options.chunk_bytes = 128;
  options.byte_budget = 256;
  options.policy = BoundedByteQueue<Chunk>::Policy::kShed;
  options.num_workers = 1;
  StreamIngester ingester(
      options, [](const StreamRecord& record, TupleEmitter* emitter) -> Status {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        emitter->Emit("R",
                      Tuple({Value::Int(static_cast<int64_t>(record.index))}));
        return Status::OK();
      });
  StringSource source(text);
  DeltaStreamSink sink;
  ASSERT_TRUE(ingester.Ingest(&source, &sink).ok());
  const auto& stats = ingester.stats();
  EXPECT_GT(stats.chunks_shed, 0u);   // pressure forced drops
  EXPECT_GT(stats.merged_chunks, 0u); // but admitted chunks all merged
  EXPECT_EQ(stats.merged_chunks, stats.chunks);
  EXPECT_LE(stats.peak_in_flight_bytes, stats.byte_budget);
  // Every admitted record came through exactly once.
  size_t total = 0;
  for (const auto& [tuple, count] : sink.deltas().at("R")) {
    EXPECT_EQ(count, 1);
    ++total;
  }
  EXPECT_EQ(total, stats.records);
  EXPECT_LT(total, 400u);  // and something really was dropped
}

TEST(StreamIngesterTest, RequestStopDrainsAdmittedPrefixLosslessly) {
  const std::string text = MakeLines(2000);
  StreamOptions options;
  options.chunk_bytes = 64;
  options.byte_budget = 512;  // keep the producer mid-stream at the stop
  options.num_workers = 2;
  // The extractor itself trips RequestStop() at record 100 — an
  // asynchronous mid-stream shutdown the producer observes while the
  // byte budget still has it blocked far from EOF.
  std::unique_ptr<StreamIngester> ingester;
  std::atomic<bool> fired{false};
  ingester = std::make_unique<StreamIngester>(
      options, [&ingester, &fired](const StreamRecord& record,
                                   TupleEmitter* emitter) -> Status {
        if (record.index >= 100 && !fired.exchange(true)) {
          ingester->RequestStop();
        }
        emitter->Emit("R",
                      Tuple({Value::Int(static_cast<int64_t>(record.index))}));
        return Status::OK();
      });
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester->Ingest(&source, &sink);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const auto& stats = ingester->stats();
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_LT(stats.records, 2000u);  // genuinely cut short
  EXPECT_GE(stats.records, 100u);   // but nothing admitted was lost
  EXPECT_EQ(stats.merged_chunks, stats.chunks);
  // The merged output is a dense record prefix: indices 0..records-1,
  // each exactly once — chunk-aligned, no holes, no duplicates.
  const DeltaSet& r = sink.deltas().at("R");
  EXPECT_EQ(r.size(), stats.records);
  for (const auto& [tuple, count] : r) {
    EXPECT_EQ(count, 1);
    EXPECT_LT(tuple.at(0).AsInt(), static_cast<int64_t>(stats.records));
  }
}

TEST(StreamIngesterTest, RecordFailureRetriesOnceThenQuarantines) {
  const std::string text = MakeLines(200);
  // Records where index % 10 == 3 fail on the first attempt only;
  // index % 50 == 7 fail always.
  std::mutex mu;
  std::set<uint64_t> attempted;
  StreamOptions options;
  options.chunk_bytes = 100;
  options.num_workers = 3;
  StreamIngester ingester(
      options, [&mu, &attempted](const StreamRecord& record,
                                 TupleEmitter* emitter) -> Status {
        if (record.index % 50 == 7) {
          return Status::Internal("permanently broken record");
        }
        if (record.index % 10 == 3) {
          std::lock_guard<std::mutex> lock(mu);
          if (attempted.insert(record.index).second) {
            return Status::Internal("flaky first attempt");
          }
        }
        emitter->Emit("R",
                      Tuple({Value::Int(static_cast<int64_t>(record.index))}));
        return Status::OK();
      });
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester.Ingest(&source, &sink);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const auto& stats = ingester.stats();
  EXPECT_EQ(stats.records, 200u);
  EXPECT_EQ(stats.records_quarantined, 4u);  // 7, 57, 107, 157
  // Flaky records retried (some overlap: %50==7 also retries once).
  EXPECT_GE(stats.extractor_retries, 20u);
  EXPECT_EQ(sink.deltas().at("R").size(), 196u);
}

TEST(StreamIngesterTest, SystematicExtractorFailureFailsIngest) {
  const std::string text = MakeLines(50);
  StreamOptions options;
  options.chunk_bytes = 100;
  options.num_workers = 2;
  StreamIngester ingester(
      options, [](const StreamRecord&, TupleEmitter*) -> Status {
        return Status::Internal("always broken");
      });
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester.Ingest(&source, &sink);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("always broken"), std::string::npos);
}

TEST(StreamIngesterTest, OverlongRecordFailsIngestCleanly) {
  std::string text = MakeLines(10) + std::string(4096, 'x');
  StreamOptions options;
  options.chunk_bytes = 64;
  options.max_record_bytes = 512;
  options.num_workers = 2;
  StreamIngester ingester(options, IndexExtractor());
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester.Ingest(&source, &sink);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

// Fault injection at every stream.* site: the stream fails with a clean
// Status carrying the injected code — no hang, no crash, no partial
// stats corruption — under concurrent workers (the failure model in the
// ingester header).
class StreamFailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }

  Status RunWithFailpoint(const char* site) {
    FailpointConfig config;
    config.code = StatusCode::kIoError;
    config.max_hits = 1;
    Failpoints::Instance().Enable(site, config);
    const std::string text = MakeLines(500);
    StreamOptions options;
    options.chunk_bytes = 64;
    options.num_workers = 4;
    StreamIngester ingester(options, IndexExtractor());
    StringSource source(text);
    DeltaStreamSink sink;
    return ingester.Ingest(&source, &sink);
  }
};

TEST_F(StreamFailpointTest, ChunkReadErrorPropagates) {
  Status status = RunWithFailpoint(failpoints::kStreamChunkRead);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(StreamFailpointTest, HandoffErrorPropagates) {
  Status status = RunWithFailpoint(failpoints::kStreamHandoff);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(StreamFailpointTest, ParseErrorPropagates) {
  Status status = RunWithFailpoint(failpoints::kStreamParse);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(StreamFailpointTest, MergeErrorPropagates) {
  Status status = RunWithFailpoint(failpoints::kStreamMerge);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(StreamFailpointTest, IngesterIsReusableAfterInjectedFailure) {
  ASSERT_FALSE(RunWithFailpoint(failpoints::kStreamMerge).ok());
  Failpoints::Instance().Reset();
  // The same options/extractor on a fresh ingester — and a fresh Ingest
  // on a fresh source — runs clean afterwards.
  const std::string text = MakeLines(100);
  StreamOptions options;
  options.chunk_bytes = 64;
  options.num_workers = 4;
  StreamIngester ingester(options, IndexExtractor());
  StringSource source(text);
  DeltaStreamSink sink;
  Status status = ingester.Ingest(&source, &sink);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(ingester.stats().records, 100u);
}

}  // namespace
}  // namespace dd
