#include <gtest/gtest.h>

#include <cmath>

#include "factor/graph.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/hogwild.h"
#include "inference/learner.h"
#include "inference/meanfield.h"
#include "inference/numa.h"
#include "util/rng.h"

namespace dd {
namespace {

/// Random small factor graph for oracle comparisons.
FactorGraph RandomGraph(uint64_t seed, int num_vars, int num_factors,
                        int num_evidence = 0) {
  Rng rng(seed);
  FactorGraph g;
  for (int v = 0; v < num_vars; ++v) {
    bool ev = v < num_evidence;
    g.AddVariable(ev, rng.NextBernoulli(0.5));
  }
  int num_weights = 2 + static_cast<int>(rng.NextBounded(4));
  for (int w = 0; w < num_weights; ++w) {
    g.AddWeight(rng.NextGaussian() * 1.2, false, "w" + std::to_string(w));
  }
  const FactorFunc funcs[] = {FactorFunc::kIsTrue, FactorFunc::kAnd, FactorFunc::kOr,
                              FactorFunc::kImply, FactorFunc::kEqual};
  for (int f = 0; f < num_factors; ++f) {
    FactorFunc func = funcs[rng.NextBounded(5)];
    size_t arity = func == FactorFunc::kIsTrue ? 1
                   : func == FactorFunc::kEqual ? 2
                                                : 2 + rng.NextBounded(2);
    std::vector<Literal> lits;
    for (size_t i = 0; i < arity; ++i) {
      lits.push_back({static_cast<uint32_t>(rng.NextBounded(num_vars)),
                      rng.NextBernoulli(0.8)});
    }
    EXPECT_TRUE(
        g.AddFactor(func, static_cast<uint32_t>(rng.NextBounded(num_weights)), lits)
            .ok());
  }
  EXPECT_TRUE(g.Finalize().ok());
  return g;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b,
                  const FactorGraph& g, bool skip_evidence) {
  double max_diff = 0.0;
  for (size_t v = 0; v < a.size(); ++v) {
    if (skip_evidence && g.is_evidence(static_cast<uint32_t>(v))) continue;
    max_diff = std::max(max_diff, std::fabs(a[v] - b[v]));
  }
  return max_diff;
}

TEST(ExactTest, SingleVariablePrior) {
  // One variable with an istrue factor of weight w: P(v=1) = sigmoid(w).
  for (double w : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    FactorGraph g;
    uint32_t v = g.AddVariable();
    uint32_t wid = g.AddWeight(w, false, "w");
    ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, wid, {{v, true}}).ok());
    ASSERT_TRUE(g.Finalize().ok());
    auto m = ExactMarginals(g);
    ASSERT_TRUE(m.ok());
    EXPECT_NEAR((*m)[0], Sigmoid(w), 1e-12);
  }
}

TEST(ExactTest, EvidenceClamping) {
  FactorGraph g;
  uint32_t a = g.AddVariable(true, true);  // evidence: true
  uint32_t b = g.AddVariable();
  uint32_t w = g.AddWeight(10.0, false, "w");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kImply, w, {{a, true}, {b, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  auto m = ExactMarginals(g, /*clamp_evidence=*/true);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)[a], 1.0);
  EXPECT_GT((*m)[b], 0.999);  // strong implication from clamped evidence
}

TEST(ExactTest, RefusesHugeGraphs) {
  FactorGraph g;
  for (int i = 0; i < 30; ++i) g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "w");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{0, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(ExactMarginals(g).status().code(), StatusCode::kOutOfRange);
}

TEST(ExactTest, LogZSingleVariable) {
  FactorGraph g;
  uint32_t v = g.AddVariable();
  uint32_t w = g.AddWeight(1.5, false, "w");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  auto z = ExactLogZ(g);
  ASSERT_TRUE(z.ok());
  EXPECT_NEAR(*z, std::log(1.0 + std::exp(1.5)), 1e-12);
}

// Property sweep: Gibbs marginals converge to exact marginals on random
// small graphs, with and without evidence.
struct OracleParam {
  uint64_t seed;
  int num_vars;
  int num_factors;
  int num_evidence;
};

class GibbsOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(GibbsOracleTest, MatchesExact) {
  const auto p = GetParam();
  FactorGraph g = RandomGraph(p.seed, p.num_vars, p.num_factors, p.num_evidence);
  auto exact = ExactMarginals(g);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  GibbsOptions opts;
  opts.burn_in = 500;
  opts.num_samples = 20000;
  opts.seed = p.seed * 7 + 1;
  GibbsSampler sampler(&g, opts);
  auto gibbs = sampler.RunMarginals();
  ASSERT_TRUE(gibbs.ok()) << gibbs.status().ToString();

  EXPECT_LT(MaxAbsDiff(*exact, *gibbs, g, true), 0.03)
      << "seed " << p.seed << " diverged from exact";
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, GibbsOracleTest,
    ::testing::Values(OracleParam{11, 4, 6, 0}, OracleParam{12, 6, 10, 0},
                      OracleParam{13, 8, 12, 2}, OracleParam{14, 8, 16, 3},
                      OracleParam{15, 10, 14, 0}, OracleParam{16, 10, 20, 4},
                      OracleParam{17, 12, 18, 2}, OracleParam{18, 12, 24, 6}));

class HogwildOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(HogwildOracleTest, MatchesExact) {
  const auto p = GetParam();
  FactorGraph g = RandomGraph(p.seed, p.num_vars, p.num_factors, p.num_evidence);
  auto exact = ExactMarginals(g);
  ASSERT_TRUE(exact.ok());

  ParallelGibbsOptions opts;
  opts.num_threads = 4;
  opts.burn_in = 500;
  opts.num_samples = 20000;
  opts.seed = p.seed;
  HogwildSampler sampler(&g, opts);
  auto marginals = sampler.RunMarginals();
  ASSERT_TRUE(marginals.ok()) << marginals.status().ToString();
  EXPECT_LT(MaxAbsDiff(*exact, *marginals, g, true), 0.04);
  EXPECT_GT(sampler.num_steps(), 0u);

  LockingSampler locking(&g, opts);
  auto locking_marginals = locking.RunMarginals();
  ASSERT_TRUE(locking_marginals.ok());
  EXPECT_LT(MaxAbsDiff(*exact, *locking_marginals, g, true), 0.04);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, HogwildOracleTest,
    ::testing::Values(OracleParam{21, 8, 12, 0}, OracleParam{22, 10, 16, 2},
                      OracleParam{23, 12, 20, 4}));

TEST(NumaSamplerTest, AwareAndUnawareMatchExact) {
  FactorGraph g = RandomGraph(31, 10, 16, 2);
  auto exact = ExactMarginals(g);
  ASSERT_TRUE(exact.ok());

  NumaTopology topo;
  topo.num_nodes = 4;
  NumaSampler sampler(&g, topo, 500, 20000, 99);

  auto aware = sampler.RunAware();
  ASSERT_TRUE(aware.ok()) << aware.status().ToString();
  EXPECT_LT(MaxAbsDiff(*exact, aware->marginals, g, true), 0.04);
  EXPECT_EQ(aware->remote_accesses, 0u);

  auto unaware = sampler.RunUnaware();
  ASSERT_TRUE(unaware.ok()) << unaware.status().ToString();
  EXPECT_LT(MaxAbsDiff(*exact, unaware->marginals, g, true), 0.04);
  EXPECT_GT(unaware->remote_accesses, 0u);  // cross-node traffic happened
  EXPECT_LE(unaware->remote_accesses, unaware->total_accesses);
}

TEST(MeanFieldTest, ExactOnIndependentVariables) {
  // With only unary factors mean-field is exact.
  FactorGraph g;
  std::vector<double> weights = {-1.5, 0.0, 0.8, 2.5};
  for (size_t i = 0; i < weights.size(); ++i) {
    uint32_t v = g.AddVariable();
    uint32_t w = g.AddWeight(weights[i], false, "w");
    ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
  }
  ASSERT_TRUE(g.Finalize().ok());
  MeanFieldOptions opts;
  MeanFieldEngine mf(&g, opts);
  auto mu = mf.Run();
  ASSERT_TRUE(mu.ok());
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_NEAR((*mu)[i], Sigmoid(weights[i]), 1e-6);
  }
}

TEST(MeanFieldTest, CloseToExactOnSparseGraphs) {
  // Mean-field is approximate; on sparse weakly-coupled graphs it should
  // land near the exact marginals.
  FactorGraph g = RandomGraph(41, 10, 8, 2);
  auto exact = ExactMarginals(g);
  ASSERT_TRUE(exact.ok());
  MeanFieldOptions opts;
  opts.damping = 0.3;
  MeanFieldEngine mf(&g, opts);
  auto mu = mf.Run();
  ASSERT_TRUE(mu.ok());
  EXPECT_LT(MaxAbsDiff(*exact, *mu, g, true), 0.15);
  EXPECT_GT(mf.iterations_used(), 0);
}

TEST(LearnerTest, RecoversUnaryBias) {
  // Evidence: 100 variables, 80 true / 20 false, all sharing an istrue
  // weight. Learned weight should make sigmoid(w) ≈ 0.8.
  FactorGraph g;
  uint32_t w = g.AddWeight(0.0, false, "bias");
  for (int i = 0; i < 100; ++i) {
    uint32_t v = g.AddVariable(true, i < 80);
    ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
  }
  ASSERT_TRUE(g.Finalize().ok());
  Learner learner(&g);
  LearnOptions opts;
  opts.epochs = 400;
  opts.learning_rate = 0.02;
  opts.decay = 0.995;
  opts.l2 = 0.0;
  ASSERT_TRUE(learner.Learn(opts).ok());
  EXPECT_NEAR(Sigmoid(g.weight(w).value), 0.8, 0.07);
}

TEST(LearnerTest, FixedWeightsUntouched) {
  FactorGraph g;
  uint32_t fixed = g.AddWeight(3.0, true, "fixed");
  uint32_t free = g.AddWeight(0.0, false, "free");
  uint32_t v1 = g.AddVariable(true, true);
  uint32_t v2 = g.AddVariable(true, false);
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, fixed, {{v1, true}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, free, {{v2, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  Learner learner(&g);
  LearnOptions opts;
  opts.epochs = 50;
  ASSERT_TRUE(learner.Learn(opts).ok());
  EXPECT_DOUBLE_EQ(g.weight(fixed).value, 3.0);
  EXPECT_LT(g.weight(free).value, 0.0);  // pushed negative toward false evidence
}

TEST(LearnerTest, LearnedWeightsSeparateClasses) {
  // Binary classification through weight tying: variables with feature A
  // are mostly true, feature B mostly false. After learning, a fresh
  // query variable with feature A should get high marginal, B low.
  Rng rng(77);
  FactorGraph g;
  uint32_t wa = g.AddWeight(0.0, false, "feature_A");
  uint32_t wb = g.AddWeight(0.0, false, "feature_B");
  for (int i = 0; i < 120; ++i) {
    bool is_a = i % 2 == 0;
    bool label = is_a ? rng.NextBernoulli(0.9) : rng.NextBernoulli(0.1);
    uint32_t v = g.AddVariable(true, label);
    ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, is_a ? wa : wb, {{v, true}}).ok());
  }
  uint32_t qa = g.AddVariable();  // query with feature A
  uint32_t qb = g.AddVariable();  // query with feature B
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, wa, {{qa, true}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, wb, {{qb, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());

  Learner learner(&g);
  LearnOptions opts;
  opts.epochs = 500;
  opts.learning_rate = 0.02;
  opts.decay = 0.997;
  opts.l2 = 0.0;
  ASSERT_TRUE(learner.Learn(opts).ok());

  GibbsOptions gopts;
  gopts.burn_in = 200;
  gopts.num_samples = 4000;
  GibbsSampler sampler(&g, gopts);
  auto m = sampler.RunMarginals();
  ASSERT_TRUE(m.ok());
  EXPECT_GT((*m)[qa], 0.7);
  EXPECT_LT((*m)[qb], 0.3);
}

TEST(NumaLearnerTest, BothModesLearnTheBias) {
  for (bool aware : {true, false}) {
    FactorGraph g;
    uint32_t w = g.AddWeight(0.0, false, "bias");
    for (int i = 0; i < 100; ++i) {
      uint32_t v = g.AddVariable(true, i < 75);
      ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
    }
    ASSERT_TRUE(g.Finalize().ok());
    NumaTopology topo;
    topo.num_nodes = 4;
    NumaLearner learner(&g, topo);
    LearnOptions opts;
    opts.epochs = 300;
    opts.learning_rate = 0.02;
    opts.decay = 0.995;
    opts.l2 = 0.0;
    auto stats = learner.Learn(opts, aware);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_NEAR(Sigmoid(g.weight(w).value), 0.75, 0.1)
        << "aware=" << aware;
    if (aware) {
      // Remote traffic only from the per-epoch averaging barrier.
      EXPECT_EQ(stats->remote_accesses,
                static_cast<uint64_t>(opts.epochs) * g.num_weights() * 3u);
    } else {
      EXPECT_GT(stats->remote_accesses, 0u);
    }
  }
}

TEST(GibbsTest, DeterministicGivenSeed) {
  FactorGraph g = RandomGraph(55, 8, 12, 2);
  GibbsOptions opts;
  opts.burn_in = 50;
  opts.num_samples = 500;
  opts.seed = 123;
  GibbsSampler s1(&g, opts), s2(&g, opts);
  auto m1 = s1.RunMarginals();
  auto m2 = s2.RunMarginals();
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(*m1, *m2);
}

TEST(GibbsTest, RequiresFinalizedGraph) {
  FactorGraph g;
  g.AddVariable();
  GibbsOptions opts;
  GibbsSampler sampler(&g, opts);
  EXPECT_FALSE(sampler.Init().ok());
}

}  // namespace
}  // namespace dd
