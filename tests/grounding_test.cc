#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/udf.h"
#include "ddlog/parser.h"
#include "grounding/grounder.h"
#include "inference/exact.h"
#include "storage/catalog.h"

namespace dd {
namespace {

constexpr char kProgram[] = R"(
  Token(s: int, t: text).
  Pair(s: int, a: int, b: int).
  Q?(a: int, b: int).
  Q_Ev(a: int, b: int, label: bool).

  # Candidate mapping.
  Q(a, b) :- Pair(s, a, b).

  # Feature rule: one weight per distinct token text in the pair's sentence.
  Q(a, b) :- Pair(s, a, b), Token(s, t) weight = identity(t).
)";

class GrounderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = ParseDdlog(kProgram);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    program_ = std::move(parsed).value();

    token_ = *catalog_.CreateTable(
        "Token", Schema({{"s", ValueType::kInt}, {"t", ValueType::kString}}));
    pair_ = *catalog_.CreateTable(
        "Pair", Schema({{"s", ValueType::kInt},
                        {"a", ValueType::kInt},
                        {"b", ValueType::kInt}}));
  }

  void AddToken(int64_t s, const std::string& t) {
    ASSERT_TRUE(token_->Insert(Tuple({Value::Int(s), Value::String(t)})).ok());
  }
  void AddPair(int64_t s, int64_t a, int64_t b) {
    ASSERT_TRUE(
        pair_->Insert(Tuple({Value::Int(s), Value::Int(a), Value::Int(b)})).ok());
  }
  void AddLabel(int64_t a, int64_t b, bool label) {
    Table* ev = *catalog_.GetOrCreateTable(
        "Q_Ev", Schema({{"a", ValueType::kInt},
                        {"b", ValueType::kInt},
                        {"label", ValueType::kBool}}));
    ASSERT_TRUE(
        ev->Insert(Tuple({Value::Int(a), Value::Int(b), Value::Bool(label)})).ok());
  }

  Catalog catalog_;
  DdlogProgram program_;
  UdfRegistry udfs_;
  Table* token_ = nullptr;
  Table* pair_ = nullptr;
};

TEST_F(GrounderTest, BuildsVariablesAndFactors) {
  AddPair(1, 10, 20);
  AddPair(2, 30, 40);
  AddToken(1, "married");
  AddToken(1, "wife");
  AddToken(2, "met");

  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());

  // Two candidates -> two variables.
  EXPECT_EQ(grounder.stats().num_variables, 2u);
  // Factors: (1,10,20) has 2 tokens, (2,30,40) has 1 -> 3 feature factors.
  EXPECT_EQ(grounder.stats().num_factors, 3u);
  // Weights tied by token text: married, wife, met -> 3 weights.
  EXPECT_EQ(grounder.stats().num_weights, 3u);

  // Variable lookup round-trips.
  int64_t var = grounder.VarIdFor("Q", Tuple({Value::Int(10), Value::Int(20)}));
  EXPECT_GE(var, 0);
  EXPECT_EQ(grounder.VarIdFor("Q", Tuple({Value::Int(1), Value::Int(2)})), -1);
}

TEST_F(GrounderTest, WeightTyingSharesWeights) {
  // The same token in two sentences must produce ONE weight, two factors.
  AddPair(1, 10, 20);
  AddPair(2, 30, 40);
  AddToken(1, "married");
  AddToken(2, "married");

  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  EXPECT_EQ(grounder.stats().num_weights, 1u);
  EXPECT_EQ(grounder.stats().num_factors, 2u);
  EXPECT_EQ(grounder.weight_observations()[0], 2u);
  EXPECT_NE(grounder.WeightKey(0).find("married"), std::string::npos);
}

TEST_F(GrounderTest, EvidenceApplied) {
  AddPair(1, 10, 20);
  AddPair(2, 30, 40);
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  EXPECT_EQ(grounder.stats().num_evidence, 0u);

  AddLabel(10, 20, true);
  ASSERT_TRUE(grounder.Reground().ok());
  EXPECT_EQ(grounder.stats().num_evidence, 1u);
  int64_t var = grounder.VarIdFor("Q", Tuple({Value::Int(10), Value::Int(20)}));
  ASSERT_GE(var, 0);
  EXPECT_TRUE(grounder.graph().is_evidence(static_cast<uint32_t>(var)));
  EXPECT_TRUE(grounder.graph().evidence_value(static_cast<uint32_t>(var)));
}

TEST_F(GrounderTest, ConflictingLabelsUnlabeled) {
  AddPair(1, 10, 20);
  AddLabel(10, 20, true);
  AddLabel(10, 20, false);
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  EXPECT_EQ(grounder.stats().num_conflicting_labels, 1u);
  EXPECT_EQ(grounder.stats().num_evidence, 0u);
}

TEST_F(GrounderTest, OrphanEvidenceCounted) {
  AddPair(1, 10, 20);
  AddLabel(99, 98, true);  // no such candidate
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  EXPECT_EQ(grounder.stats().num_orphan_evidence, 1u);
}

TEST_F(GrounderTest, IncrementalMatchesReground) {
  AddPair(1, 10, 20);
  AddToken(1, "married");
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  EXPECT_EQ(grounder.stats().num_variables, 1u);

  // Delta: a new sentence with a pair and two tokens.
  std::map<std::string, DeltaSet> delta;
  delta["Pair"][Tuple({Value::Int(2), Value::Int(30), Value::Int(40)})] = 1;
  delta["Token"][Tuple({Value::Int(2), Value::String("married")})] = 1;
  delta["Token"][Tuple({Value::Int(2), Value::String("divorced")})] = 1;
  ASSERT_TRUE(grounder.ApplyDeltas(delta).ok());

  EXPECT_EQ(grounder.stats().num_factors, 3u);
  EXPECT_EQ(grounder.stats().num_weights, 2u);
  EXPECT_FALSE(grounder.changed_vars().empty());

  // Reference: a fresh grounder over the same final base tables.
  Catalog ref;
  Table* rt = *ref.CreateTable("Token", token_->schema());
  Table* rp = *ref.CreateTable("Pair", pair_->schema());
  for (const Tuple& t : token_->Scan()) ASSERT_TRUE(rt->Insert(t).ok());
  for (const Tuple& t : pair_->Scan()) ASSERT_TRUE(rp->Insert(t).ok());
  Grounder fresh(&ref, &program_, &udfs_);
  ASSERT_TRUE(fresh.Initialize().ok());
  EXPECT_EQ(fresh.stats().num_factors, grounder.stats().num_factors);
  EXPECT_EQ(fresh.stats().num_weights, grounder.stats().num_weights);
  // Live variable count matches (the incremental one has no deletions here).
  EXPECT_EQ(fresh.stats().num_variables, grounder.stats().num_variables);
}

TEST_F(GrounderTest, DeletionMakesVariableInert) {
  AddPair(1, 10, 20);
  AddPair(2, 30, 40);
  AddToken(1, "married");
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  int64_t var = grounder.VarIdFor("Q", Tuple({Value::Int(10), Value::Int(20)}));
  ASSERT_GE(var, 0);

  std::map<std::string, DeltaSet> delta;
  delta["Pair"][Tuple({Value::Int(1), Value::Int(10), Value::Int(20)})] = -1;
  ASSERT_TRUE(grounder.ApplyDeltas(delta).ok());

  // The candidate is gone; its variable id persists but is inert.
  EXPECT_EQ(grounder.VarIdFor("Q", Tuple({Value::Int(10), Value::Int(20)})), -1);
  EXPECT_TRUE(grounder.graph().is_evidence(static_cast<uint32_t>(var)));
  // Its factor disappeared with it.
  EXPECT_EQ(grounder.stats().num_factors, 0u);
  // The deleted variable is reported as changed.
  auto& changed = grounder.changed_vars();
  EXPECT_NE(std::find(changed.begin(), changed.end(), static_cast<uint32_t>(var)),
            changed.end());

  // Re-inserting revives the same variable id (stable identity).
  delta.clear();
  delta["Pair"][Tuple({Value::Int(1), Value::Int(10), Value::Int(20)})] = 1;
  ASSERT_TRUE(grounder.ApplyDeltas(delta).ok());
  EXPECT_EQ(grounder.VarIdFor("Q", Tuple({Value::Int(10), Value::Int(20)})), var);
  EXPECT_EQ(grounder.stats().num_factors, 1u);
}

TEST_F(GrounderTest, SavedWeightsSurviveRebuild) {
  AddPair(1, 10, 20);
  AddToken(1, "married");
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  ASSERT_EQ(grounder.graph().num_weights(), 1u);
  grounder.mutable_graph()->set_weight_value(0, 2.75);
  grounder.SaveWeights();

  std::map<std::string, DeltaSet> delta;
  delta["Token"][Tuple({Value::Int(1), Value::String("wife")})] = 1;
  ASSERT_TRUE(grounder.ApplyDeltas(delta).ok());
  // The "married" weight kept its learned value across the rebuild.
  bool found = false;
  for (uint32_t w = 0; w < grounder.graph().num_weights(); ++w) {
    if (grounder.WeightKey(w).find("married") != std::string::npos) {
      EXPECT_DOUBLE_EQ(grounder.graph().weight(w).value, 2.75);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(GrounderCorrelationTest, ImplyFactorBetweenQueryRelations) {
  auto program = ParseDdlog(R"(
    Link(x: int, y: int).
    A?(x: int).
    B?(x: int).
    A(x) :- Link(x, y).
    B(y) :- Link(x, y).
    A(x) => B(y) :- Link(x, y) weight = 2.0.
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Catalog catalog;
  Table* link = *catalog.CreateTable(
      "Link", Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}));
  ASSERT_TRUE(link->Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  UdfRegistry udfs;
  Grounder grounder(&catalog, &*program, &udfs);
  ASSERT_TRUE(grounder.Initialize().ok()) << "init failed";
  EXPECT_EQ(grounder.stats().num_variables, 2u);
  EXPECT_EQ(grounder.stats().num_factors, 1u);
  ASSERT_EQ(grounder.graph().num_factors(), 1u);
  EXPECT_EQ(grounder.graph().factor_func(0), FactorFunc::kImply);
  EXPECT_TRUE(grounder.graph().weight(0).is_fixed);
  EXPECT_DOUBLE_EQ(grounder.graph().weight(0).value, 2.0);

  // The imply factor couples the marginals: P(B) > 0.5 given weight>0.
  auto marginals = ExactMarginals(grounder.graph());
  ASSERT_TRUE(marginals.ok());
  int64_t b_var = grounder.VarIdFor("B", Tuple({Value::Int(2)}));
  ASSERT_GE(b_var, 0);
  EXPECT_GT((*marginals)[static_cast<size_t>(b_var)], 0.5);
}

TEST(GrounderErrorsTest, MissingUdfFails) {
  auto program = ParseDdlog(R"(
    T(x: int, t: text).
    Q?(x: int).
    Q(x) :- T(x, t) weight = no_such_udf(t).
  )");
  ASSERT_TRUE(program.ok());
  Catalog catalog;
  Table* t = *catalog.CreateTable(
      "T", Schema({{"x", ValueType::kInt}, {"t", ValueType::kString}}));
  ASSERT_TRUE(t->Insert(Tuple({Value::Int(1), Value::String("a")})).ok());
  UdfRegistry udfs;
  Grounder grounder(&catalog, &*program, &udfs);
  Status st = grounder.Initialize();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(GrounderErrorsTest, InvalidProgramFailsInitialize) {
  auto program = ParseDdlog("Q(x) :- Mystery(x).");
  ASSERT_TRUE(program.ok());
  Catalog catalog;
  UdfRegistry udfs;
  Grounder grounder(&catalog, &*program, &udfs);
  EXPECT_FALSE(grounder.Initialize().ok());
}

}  // namespace
}  // namespace dd
