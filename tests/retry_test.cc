#include "util/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace dd {
namespace {

TEST(RetryTest, SucceedsFirstTryCallsOnce) {
  Rng rng(1);
  int calls = 0;
  Status st = RetryWithBackoff(RetryOptions(), &rng, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, RetriesUntilSuccess) {
  Rng rng(1);
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_ms = 0;  // no sleeping in tests
  int calls = 0;
  Status st = RetryWithBackoff(options, &rng, [&]() -> Status {
    ++calls;
    if (calls < 3) return Status::IoError("flaky");
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustionReturnsLastError) {
  Rng rng(1);
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0;
  int calls = 0;
  Status st = RetryWithBackoff(options, &rng, [&]() -> Status {
    ++calls;
    return Status::IoError("always " + std::to_string(calls));
  });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find("always 3"), std::string::npos);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentErrorStopsImmediately) {
  Rng rng(1);
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff_ms = 0;
  options.should_retry = [](const Status& s) {
    return s.code() != StatusCode::kCorruption;
  };
  int calls = 0;
  Status st = RetryWithBackoff(options, &rng, [&]() -> Status {
    ++calls;
    return Status::Corruption("bad bytes");
  });
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, MaxAttemptsBelowOneStillRunsOnce) {
  Rng rng(1);
  RetryOptions options;
  options.max_attempts = 0;
  int calls = 0;
  Status st = RetryWithBackoff(options, &rng, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, BackoffGrowsGeometricallyAndTruncates) {
  RetryOptions options;
  options.initial_backoff_ms = 10;
  options.backoff_multiplier = 2;
  options.max_backoff_ms = 35;
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 2), 10.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 3), 20.0);
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 4), 35.0);  // 40 truncated
  EXPECT_DOUBLE_EQ(BackoffMillis(options, 5), 35.0);
}

TEST(RetryTest, JitterStaysWithinFractionAndIsDeterministic) {
  RetryOptions options;
  options.initial_backoff_ms = 100;
  options.jitter_fraction = 0.2;
  Rng a(42), b(42);
  for (int attempt = 2; attempt < 8; ++attempt) {
    double base = BackoffMillis(options, attempt);
    double first = JitteredBackoffMillis(options, attempt, &a);
    double second = JitteredBackoffMillis(options, attempt, &b);
    EXPECT_DOUBLE_EQ(first, second);  // same seed, same schedule
    EXPECT_GE(first, base * 0.8);
    EXPECT_LE(first, base * 1.2);
  }
}

TEST(RetryTest, SleepFnReceivesSchedule) {
  Rng rng(7);
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_ms = 10;
  options.jitter_fraction = 0;
  std::vector<double> slept;
  Status st = RetryWithBackoff(
      options, &rng, [] { return Status::IoError("nope"); },
      [&](double ms) { slept.push_back(ms); });
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 10.0);
  EXPECT_DOUBLE_EQ(slept[1], 20.0);
  EXPECT_DOUBLE_EQ(slept[2], 40.0);
}

TEST(RetryTest, OnRetryFiresBeforeEachRetryWithLastError) {
  Rng rng(7);
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0;
  std::vector<int> attempts;
  std::vector<std::string> errors;
  int calls = 0;
  RetryWithBackoff(
      options, &rng,
      [&]() -> Status {
        ++calls;
        return Status::IoError("err" + std::to_string(calls));
      },
      /*sleep_fn=*/{},
      [&](int attempt, const Status& error, double /*sleep_ms*/) {
        attempts.push_back(attempt);
        errors.push_back(std::string(error.message()));
      });
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], 2);
  EXPECT_EQ(attempts[1], 3);
  EXPECT_EQ(errors[0], "err1");
  EXPECT_EQ(errors[1], "err2");
}

TEST(RetryTest, ZeroBackoffNeverSleeps) {
  Rng rng(7);
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff_ms = 0;
  int sleeps = 0;
  RetryWithBackoff(
      options, &rng, [] { return Status::IoError("nope"); },
      [&](double) { ++sleeps; });
  EXPECT_EQ(sleeps, 0);
}

}  // namespace
}  // namespace dd
