#include <gtest/gtest.h>

#include <set>

#include "query/datalog.h"
#include "query/dred.h"
#include "query/rule.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace dd {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple({Value::Int(a), Value::Int(b)}); }
Tuple T1(int64_t a) { return Tuple({Value::Int(a)}); }
Schema Int2() { return Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}); }
Schema Int1() { return Schema({{"x", ValueType::kInt}}); }

// Q(x) :- R(x, y), S(y).
std::vector<ConjunctiveRule> JoinProgram() {
  std::vector<ConjunctiveRule> rules(1);
  rules[0].head = {"Q", {Term::Var("x")}, false};
  rules[0].body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules[0].body.push_back({"S", {Term::Var("y")}, false});
  return rules;
}

class DredTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *catalog_.CreateTable("R", Int2());
    s_ = *catalog_.CreateTable("S", Int1());
    q_ = *catalog_.CreateTable("Q", Int1());
  }
  Catalog catalog_;
  Table* r_;
  Table* s_;
  Table* q_;
};

TEST_F(DredTest, InitializePopulatesDerived) {
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 20)).ok());
  ASSERT_TRUE(s_->Insert(T1(10)).ok());
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_EQ(q_->size(), 1u);
  EXPECT_TRUE(q_->Contains(T1(1)));
  EXPECT_EQ(engine.DerivationCount("Q", T1(1)), 1);
}

TEST_F(DredTest, InsertPropagates) {
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_EQ(q_->size(), 0u);

  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = 1;
  auto result = engine.ApplyDeltas(delta);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(q_->Contains(T1(1)));
  EXPECT_TRUE(s_->Contains(T1(10)));
  ASSERT_TRUE(result->count("Q"));
  EXPECT_EQ(result->at("Q").at(T1(1)), 1);
}

TEST_F(DredTest, DeletePropagates) {
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(s_->Insert(T1(10)).ok());
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_TRUE(q_->Contains(T1(1)));

  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = -1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_FALSE(q_->Contains(T1(1)));
  EXPECT_FALSE(s_->Contains(T1(10)));
}

TEST_F(DredTest, MultipleDerivationsSurviveSingleDelete) {
  // Q(1) derivable via y=10 and y=20; deleting one support keeps Q(1).
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(r_->Insert(T2(1, 20)).ok());
  ASSERT_TRUE(s_->Insert(T1(10)).ok());
  ASSERT_TRUE(s_->Insert(T1(20)).ok());
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_EQ(engine.DerivationCount("Q", T1(1)), 2);

  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = -1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_TRUE(q_->Contains(T1(1)));  // still one derivation
  EXPECT_EQ(engine.DerivationCount("Q", T1(1)), 1);

  delta.clear();
  delta["S"][T1(20)] = -1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_FALSE(q_->Contains(T1(1)));
}

TEST_F(DredTest, NoOpDeltasIgnored) {
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(s_->Insert(T1(10)).ok());
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());

  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = 1;    // already present
  delta["S"][T1(99)] = -1;   // not present
  auto result = engine.ApplyDeltas(delta);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(engine.DerivationCount("Q", T1(1)), 1);
}

TEST_F(DredTest, DeltaOnDerivedRelationRejected) {
  IncrementalEngine engine(&catalog_, JoinProgram());
  ASSERT_TRUE(engine.Initialize().ok());
  std::map<std::string, DeltaSet> delta;
  delta["Q"][T1(1)] = 1;
  EXPECT_FALSE(engine.ApplyDeltas(delta).ok());
}

TEST_F(DredTest, RecursiveProgramRejected) {
  ASSERT_TRUE(catalog_.CreateTable("P", Int2()).ok());
  std::vector<ConjunctiveRule> rules(2);
  rules[0].head = {"P", {Term::Var("x"), Term::Var("y")}, false};
  rules[0].body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules[1].head = {"P", {Term::Var("x"), Term::Var("z")}, false};
  rules[1].body.push_back({"P", {Term::Var("x"), Term::Var("y")}, false});
  rules[1].body.push_back({"R", {Term::Var("y"), Term::Var("z")}, false});
  IncrementalEngine engine(&catalog_, rules);
  EXPECT_EQ(engine.Initialize().code(), StatusCode::kUnimplemented);
}

TEST_F(DredTest, NegationInsertRemovesDerived) {
  // Q(x) :- R(x, y), !S(y).
  std::vector<ConjunctiveRule> rules(1);
  rules[0].head = {"Q", {Term::Var("x")}, false};
  rules[0].body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules[0].body.push_back({"S", {Term::Var("y")}, true});
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  IncrementalEngine engine(&catalog_, rules);
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_TRUE(q_->Contains(T1(1)));

  // Inserting S(10) kills the !S(10) support.
  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = 1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_FALSE(q_->Contains(T1(1)));

  // Deleting it again restores Q(1).
  delta.clear();
  delta["S"][T1(10)] = -1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_TRUE(q_->Contains(T1(1)));
}

TEST_F(DredTest, TwoLevelPropagation) {
  // Q(x) :- R(x, y), S(y).  W(x) :- Q(x), R(x, y).
  ASSERT_TRUE(catalog_.CreateTable("W", Int1()).ok());
  auto rules = JoinProgram();
  ConjunctiveRule r2;
  r2.head = {"W", {Term::Var("x")}, false};
  r2.body.push_back({"Q", {Term::Var("x")}, false});
  r2.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules.push_back(r2);

  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  IncrementalEngine engine(&catalog_, rules);
  ASSERT_TRUE(engine.Initialize().ok());
  Table* w = *catalog_.GetTable("W");
  EXPECT_EQ(w->size(), 0u);

  std::map<std::string, DeltaSet> delta;
  delta["S"][T1(10)] = 1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_TRUE(w->Contains(T1(1)));

  delta.clear();
  delta["S"][T1(10)] = -1;
  ASSERT_TRUE(engine.ApplyDeltas(delta).ok());
  EXPECT_FALSE(w->Contains(T1(1)));
}

// Property test: random insert/delete workloads give a final state
// identical to evaluating the program from scratch on the final base
// tables. Sweeps several program shapes.
struct RandomWorkloadParam {
  uint64_t seed;
  int num_ops;
};

class DredPropertyTest : public ::testing::TestWithParam<RandomWorkloadParam> {};

TEST_P(DredPropertyTest, MatchesFullEvaluation) {
  const auto param = GetParam();
  Rng rng(param.seed);

  Catalog inc_catalog;
  Table* r = *inc_catalog.CreateTable("R", Int2());
  Table* s = *inc_catalog.CreateTable("S", Int1());
  ASSERT_TRUE(inc_catalog.CreateTable("Q", Int1()).ok());
  ASSERT_TRUE(inc_catalog.CreateTable("W", Int1()).ok());

  // Program with a join, a negation, and two levels:
  //   Q(x) :- R(x, y), S(y).
  //   W(x) :- R(x, y), !Q(x).
  std::vector<ConjunctiveRule> rules(2);
  rules[0].head = {"Q", {Term::Var("x")}, false};
  rules[0].body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules[0].body.push_back({"S", {Term::Var("y")}, false});
  rules[1].head = {"W", {Term::Var("x")}, false};
  rules[1].body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rules[1].body.push_back({"Q", {Term::Var("x")}, true});

  IncrementalEngine engine(&inc_catalog, rules);
  ASSERT_TRUE(engine.Initialize().ok());

  const int64_t domain = 6;  // small domain to force collisions
  for (int op = 0; op < param.num_ops; ++op) {
    std::map<std::string, DeltaSet> delta;
    int n_changes = 1 + static_cast<int>(rng.NextBounded(3));
    for (int c = 0; c < n_changes; ++c) {
      bool on_r = rng.NextBernoulli(0.6);
      bool insert = rng.NextBernoulli(0.55);
      if (on_r) {
        Tuple t = T2(rng.NextInt(0, domain), rng.NextInt(0, domain));
        delta["R"][t] = insert ? 1 : -1;
      } else {
        Tuple t = T1(rng.NextInt(0, domain));
        delta["S"][t] = insert ? 1 : -1;
      }
    }
    auto applied = engine.ApplyDeltas(delta);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }

  // Reference: evaluate from scratch on copies of the final base tables.
  Catalog ref_catalog;
  Table* ref_r = *ref_catalog.CreateTable("R", Int2());
  Table* ref_s = *ref_catalog.CreateTable("S", Int1());
  ASSERT_TRUE(ref_catalog.CreateTable("Q", Int1()).ok());
  ASSERT_TRUE(ref_catalog.CreateTable("W", Int1()).ok());
  for (const Tuple& t : r->Scan()) ASSERT_TRUE(ref_r->Insert(t).ok());
  for (const Tuple& t : s->Scan()) ASSERT_TRUE(ref_s->Insert(t).ok());
  DatalogEngine full(&ref_catalog);
  ASSERT_TRUE(full.Evaluate(rules).ok());

  for (const char* rel : {"Q", "W"}) {
    auto inc_rows = (*inc_catalog.GetTable(rel))->Scan();
    auto ref_rows = (*ref_catalog.GetTable(rel))->Scan();
    std::set<Tuple> inc_set(inc_rows.begin(), inc_rows.end());
    std::set<Tuple> ref_set(ref_rows.begin(), ref_rows.end());
    EXPECT_EQ(inc_set, ref_set) << "relation " << rel << " diverged (seed "
                                << param.seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, DredPropertyTest,
    ::testing::Values(RandomWorkloadParam{1, 10}, RandomWorkloadParam{2, 25},
                      RandomWorkloadParam{3, 50}, RandomWorkloadParam{4, 50},
                      RandomWorkloadParam{5, 100}, RandomWorkloadParam{6, 100},
                      RandomWorkloadParam{7, 200}, RandomWorkloadParam{8, 200}));

}  // namespace
}  // namespace dd
