#include "serve/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dd {
namespace {

TEST(LruCacheTest, MissThenHit) {
  LruCache<std::string, int> cache(4);
  int v = 0;
  EXPECT_FALSE(cache.Get("a", &v));
  cache.Put("a", 7);
  EXPECT_TRUE(cache.Get("a", &v));
  EXPECT_EQ(v, 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedInOrder) {
  LruCache<int, int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);
  // Touch 1 so 2 becomes the LRU entry.
  int v = 0;
  ASSERT_TRUE(cache.Get(1, &v));
  cache.Put(4, 4);  // evicts 2
  EXPECT_FALSE(cache.Get(2, &v));
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_TRUE(cache.Get(3, &v));
  EXPECT_TRUE(cache.Get(4, &v));
  EXPECT_EQ(cache.evictions(), 1u);

  cache.Put(5, 5);  // evicts 1 (least recent after the touches above)
  EXPECT_FALSE(cache.Get(1, &v));
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCacheTest, PutOverwriteRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite: 2 is now LRU
  cache.Put(3, 30);  // evicts 2
  int v = 0;
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(cache.Get(2, &v));
  std::vector<int> keys = cache.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 1);  // most recent (the hit above)
}

TEST(LruCacheTest, ClearDropsEntriesKeepsCounters) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  int v = 0;
  EXPECT_TRUE(cache.Get(1, &v));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1, &v));  // invalidated, counts as a miss
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache<int, int> cache(0);
  cache.Put(1, 1);
  int v = 0;
  EXPECT_FALSE(cache.Get(1, &v));
  EXPECT_EQ(cache.size(), 0u);
}

// Hammer one cache from several threads (lookups, inserts, clears) and
// check the exactness invariant: every Get incremented exactly one of
// hits/misses, so the counters sum to the number of lookups. Run under
// TSan this is also the data-race test for the serving hot path.
TEST(LruCacheTest, ConcurrentCountersSumExactly) {
  LruCache<int, int> cache(64);
  constexpr int kThreads = 4;
  constexpr int kLookupsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        int key = (t * 31 + i) % 128;
        int v = 0;
        if (!cache.Get(key, &v)) cache.Put(key, key);
      }
    });
  }
  // One thread invalidating concurrently, as an epoch swapper would.
  threads.emplace_back([&cache] {
    for (int i = 0; i < 50; ++i) {
      cache.Clear();
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<uint64_t>(kThreads) * kLookupsPerThread);
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace dd
