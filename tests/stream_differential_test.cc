// The streaming front end's differential contract (DESIGN.md §14): a
// chunked, multi-worker, backpressured ingest must be byte-for-byte
// indistinguishable from a sequential batch loop over the same records —
// identical delta sets, identical table row ids, identical factor graph
// bytes, identical marginals — at every chunk size and worker count.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "ddlog/parser.h"
#include "factor/io.h"
#include "storage/catalog.h"
#include "storage/tsv.h"
#include "stream/ingester.h"
#include "testdata/corpus_logs.h"
#include "testdata/logs_app.h"
#include "util/crc32c.h"

namespace dd {
namespace {

LogsCorpus SmallCorpus(uint64_t seed = 21) {
  LogsCorpusOptions options;
  options.num_windows = 40;
  options.seed = seed;
  return GenerateLogsCorpus(options);
}

/// Sequential batch oracle over the corpus lines: same extractor, same
/// record indices, no chunking, no queues, no threads.
void ForEachRecord(
    const std::string& text,
    const std::function<void(const StreamRecord&, TupleEmitter*)>& fn) {
  StreamExtractor extractor = MakeLogsStreamExtractor();
  uint64_t index = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    StreamRecord record;
    record.index = index++;
    record.line = std::string_view(text.data() + start, end - start);
    TupleEmitter emitter;
    ASSERT_TRUE(extractor(record, &emitter).ok());
    fn(record, &emitter);
    start = end + 1;
  }
}

const size_t kChunkSizes[] = {256, 4096, 64 * 1024};
const size_t kWorkerCounts[] = {1, 2, 4, 8};

TEST(StreamDifferentialTest, DeltasMatchBatchAtAnyChunkingAndWorkers) {
  const LogsCorpus corpus = SmallCorpus();

  std::map<std::string, DeltaSet> oracle;
  ForEachRecord(corpus.text, [&](const StreamRecord&, TupleEmitter* emitter) {
    for (const auto& [relation, rows] : emitter->emitted()) {
      for (const Tuple& t : rows) oracle[relation][t] += 1;
    }
  });
  ASSERT_FALSE(oracle.empty());

  for (size_t chunk_bytes : kChunkSizes) {
    for (size_t workers : kWorkerCounts) {
      StreamOptions options;
      options.chunk_bytes = chunk_bytes;
      options.num_workers = workers;
      StreamIngester ingester(options, MakeLogsStreamExtractor());
      StringSource source(corpus.text);
      DeltaStreamSink sink;
      Status status = ingester.Ingest(&source, &sink);
      ASSERT_TRUE(status.ok()) << status.ToString();
      EXPECT_EQ(sink.deltas(), oracle)
          << "chunk=" << chunk_bytes << " workers=" << workers;
      EXPECT_EQ(ingester.stats().records, corpus.lines.size());
    }
  }
}

TEST(StreamDifferentialTest, TableRowIdsMatchBatchAtAnyChunkingAndWorkers) {
  const LogsCorpus corpus = SmallCorpus(22);
  auto program = ParseDdlog(LogsDdlog());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_TRUE(AnalyzeProgram(*program).ok());

  // Batch oracle: insert every emission in record order.
  Catalog oracle_catalog;
  ForEachRecord(corpus.text, [&](const StreamRecord&, TupleEmitter* emitter) {
    for (const auto& [relation, rows] : emitter->emitted()) {
      const RelationDecl* decl = program->FindDecl(relation);
      ASSERT_NE(decl, nullptr);
      auto table = oracle_catalog.GetOrCreateTable(relation, decl->schema);
      ASSERT_TRUE(table.ok());
      for (const Tuple& t : rows) ASSERT_TRUE((*table)->Insert(t).ok());
    }
  });
  std::map<std::string, std::string> oracle_tsv;
  for (const std::string& name : oracle_catalog.TableNames()) {
    oracle_tsv[name] = TableToTsv(**oracle_catalog.GetTable(name));
  }
  ASSERT_FALSE(oracle_tsv.empty());

  for (size_t chunk_bytes : kChunkSizes) {
    for (size_t workers : kWorkerCounts) {
      Catalog catalog;
      CatalogStreamSink sink(&catalog, &*program);
      StreamOptions options;
      options.chunk_bytes = chunk_bytes;
      options.num_workers = workers;
      StreamIngester ingester(options, MakeLogsStreamExtractor());
      StringSource source(corpus.text);
      Status status = ingester.Ingest(&source, &sink);
      ASSERT_TRUE(status.ok()) << status.ToString();

      // Row-id-sensitive comparison: the serialized table must be
      // byte-identical, not merely set-equal.
      ASSERT_EQ(catalog.TableNames(), oracle_catalog.TableNames());
      for (const auto& [name, tsv] : oracle_tsv) {
        std::string streamed = TableToTsv(**catalog.GetTable(name));
        EXPECT_EQ(Crc32c(streamed.data(), streamed.size()),
                  Crc32c(tsv.data(), tsv.size()))
            << name << " chunk=" << chunk_bytes << " workers=" << workers;
        ASSERT_EQ(streamed, tsv);
      }
    }
  }
}

struct PipelineResult {
  std::string graph;
  std::vector<std::pair<Tuple, double>> causes;
  std::vector<std::pair<Tuple, double>> cooccurs;
};

PipelineOptions FastOptions() {
  PipelineOptions options;
  options.learn.epochs = 60;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 50;
  options.inference.num_samples = 150;
  options.strategy = PipelineOptions::Strategy::kSampling;
  return options;
}

PipelineResult RunToResult(DeepDivePipeline* pipeline) {
  PipelineResult result;
  Status status = pipeline->Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  result.graph = SerializeGraph(pipeline->grounder()->graph());
  auto causes = pipeline->Marginals("Causes");
  EXPECT_TRUE(causes.ok());
  if (causes.ok()) result.causes = *causes;
  auto cooccurs = pipeline->Marginals("CoOccurs");
  EXPECT_TRUE(cooccurs.ok());
  if (cooccurs.ok()) result.cooccurs = *cooccurs;
  return result;
}

// End-to-end: a pipeline fed through the streaming front end produces
// the same factor graph bytes and the same marginals as the batch
// oracle, across chunk sizes, stream workers, and pipeline threads.
TEST(StreamDifferentialTest, PipelineGraphAndMarginalsMatchBatch) {
  const LogsCorpus corpus = SmallCorpus(23);

  auto batch = MakeLogsBatchPipeline(corpus, FastOptions());
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  PipelineResult oracle = RunToResult(batch->get());
  ASSERT_FALSE(oracle.graph.empty());
  ASSERT_FALSE(oracle.causes.empty());

  struct Config {
    size_t chunk_bytes;
    size_t stream_workers;
    size_t pipeline_threads;
  };
  const Config kConfigs[] = {
      {512, 4, 0},          // tiny chunks, many workers, default threads
      {8 * 1024, 2, 1},     // sequential pipeline oracle downstream
      {1 << 20, 8, 4},      // one giant chunk, parallel everything
  };
  const uint32_t oracle_crc =
      Crc32c(oracle.graph.data(), oracle.graph.size());

  for (const Config& config : kConfigs) {
    PipelineOptions popt = FastOptions();
    popt.num_threads = config.pipeline_threads;
    StreamOptions sopt;
    sopt.chunk_bytes = config.chunk_bytes;
    sopt.num_workers = config.stream_workers;
    IngestStats stats;
    auto streamed = MakeLogsPipeline(corpus, popt, sopt, &stats);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(stats.records, corpus.lines.size());
    PipelineResult result = RunToResult(streamed->get());

    EXPECT_EQ(Crc32c(result.graph.data(), result.graph.size()), oracle_crc)
        << "chunk=" << config.chunk_bytes
        << " workers=" << config.stream_workers
        << " threads=" << config.pipeline_threads;
    ASSERT_EQ(result.graph, oracle.graph);
    EXPECT_EQ(result.causes, oracle.causes);
    EXPECT_EQ(result.cooccurs, oracle.cooccurs);
  }
}

}  // namespace
}  // namespace dd
