#include <gtest/gtest.h>

#include "core/diagnostics.h"
#include "core/mindtagger.h"
#include "core/udf.h"
#include "ddlog/parser.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"

namespace dd {
namespace {

/// A program where one feature string is emitted by the SAME join as the
/// positive supervision rule — the §8 failure mode.
constexpr char kOverlapProgram[] = R"(
  Cand(id: int).
  Feat(id: int, f: text).
  Kb(id: int).
  Q?(id: int).
  Q_Ev(id: int, label: bool).

  Q(id) :- Cand(id).
  Q(id) :- Cand(id), Feat(id, f) weight = identity(f).
  Q_Ev(id, true) :- Cand(id), Kb(id).
  Q_Ev(id, false) :- Cand(id), !Kb(id).
)";

class DiagnosticsTest : public ::testing::Test {
 protected:
  void Populate(bool overlapping) {
    Table* cand = *catalog_.CreateTable("Cand", Schema({{"id", ValueType::kInt}}));
    Table* feat = *catalog_.CreateTable(
        "Feat", Schema({{"id", ValueType::kInt}, {"f", ValueType::kString}}));
    Table* kb = *catalog_.CreateTable("Kb", Schema({{"id", ValueType::kInt}}));
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(cand->Insert(Tuple({Value::Int(i)})).ok());
      bool positive = i < 30;
      if (positive) {
        ASSERT_TRUE(kb->Insert(Tuple({Value::Int(i)})).ok());
      }
      // A benign feature appearing on ~half of each class.
      if (i % 2 == 0) {
        ASSERT_TRUE(
            feat->Insert(Tuple({Value::Int(i), Value::String("benign")})).ok());
      }
      // The overlapping feature mirrors the KB exactly.
      if (overlapping && positive) {
        ASSERT_TRUE(
            feat->Insert(Tuple({Value::Int(i), Value::String("in_kb")})).ok());
      }
    }
  }

  Catalog catalog_;
  UdfRegistry udfs_;
};

TEST_F(DiagnosticsTest, DetectsSupervisionOverlap) {
  Populate(true);
  auto program = ParseDdlog(kOverlapProgram);
  ASSERT_TRUE(program.ok());
  Grounder grounder(&catalog_, &*program, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());

  auto stats = SupervisionDiagnostics::Analyze(grounder);
  ASSERT_FALSE(stats.empty());
  // The in_kb feature is flagged (it IS the supervision rule).
  bool flagged_overlap = false;
  for (const auto& s : stats) {
    if (s.key.find("in_kb") != std::string::npos) {
      EXPECT_TRUE(s.suspicious);
      EXPECT_EQ(s.on_negative, 0u);
      EXPECT_DOUBLE_EQ(s.positive_coverage, 1.0);
      flagged_overlap = true;
    }
    if (s.key.find("benign") != std::string::npos) {
      EXPECT_FALSE(s.suspicious);
    }
  }
  EXPECT_TRUE(flagged_overlap);
  EXPECT_NE(SupervisionDiagnostics::Report(stats).find("in_kb"), std::string::npos);
}

TEST_F(DiagnosticsTest, CleanProgramHasNoWarnings) {
  Populate(false);
  auto program = ParseDdlog(kOverlapProgram);
  ASSERT_TRUE(program.ok());
  Grounder grounder(&catalog_, &*program, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  auto stats = SupervisionDiagnostics::Analyze(grounder);
  for (const auto& s : stats) EXPECT_FALSE(s.suspicious) << s.key;
  EXPECT_TRUE(SupervisionDiagnostics::Report(stats).empty());
}

std::vector<std::pair<Tuple, double>> FakeMarginals(int n, double above_frac) {
  std::vector<std::pair<Tuple, double>> out;
  for (int i = 0; i < n; ++i) {
    double p = i < n * above_frac ? 0.95 : 0.2;
    out.emplace_back(Tuple({Value::Int(i)}), p);
  }
  return out;
}

TEST(AnnotationSessionTest, PrecisionSampling) {
  auto marginals = FakeMarginals(200, 0.5);  // 100 above threshold
  auto session = AnnotationSession::ForPrecision(marginals, 0.9, 30, 7);
  EXPECT_EQ(session.items().size(), 30u);
  EXPECT_EQ(session.num_annotated(), 0u);
  for (const AnnotationItem& item : session.items()) {
    EXPECT_GE(item.probability, 0.9);  // only extractions sampled
  }
  // Deterministic for a fixed seed.
  auto session2 = AnnotationSession::ForPrecision(marginals, 0.9, 30, 7);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(session.items()[i].tuple, session2.items()[i].tuple);
  }
}

TEST(AnnotationSessionTest, SampleLargerThanPopulation) {
  auto marginals = FakeMarginals(10, 1.0);
  auto session = AnnotationSession::ForPrecision(marginals, 0.9, 100, 7);
  EXPECT_EQ(session.items().size(), 10u);
}

TEST(AnnotationSessionTest, AnnotateAndEstimate) {
  auto marginals = FakeMarginals(100, 1.0);
  auto session = AnnotationSession::ForPrecision(marginals, 0.9, 20, 7);
  EXPECT_FALSE(session.Estimate().ok());  // nothing annotated
  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.Annotate(i, i < 18).ok());  // 90% correct
  }
  EXPECT_FALSE(session.Annotate(99, true).ok());  // out of range
  auto estimate = session.Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->first, 0.9, 1e-9);
  EXPECT_GT(estimate->second, 0.0);  // binomial stderr
  EXPECT_FALSE(session.ToText().empty());
}

TEST(AnnotationSessionTest, RecallPrefill) {
  auto marginals = FakeMarginals(100, 0.5);
  std::vector<Tuple> known_true;
  for (int i = 40; i < 60; ++i) known_true.push_back(Tuple({Value::Int(i)}));
  auto session = AnnotationSession::ForRecall(known_true, marginals, 0.9, 20, 7);
  EXPECT_EQ(session.items().size(), 20u);
  // Items 40-49 are above threshold (prefilled correct), 50-59 below.
  auto estimate = session.Estimate();
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->first, 0.5, 1e-9);
}

}  // namespace
}  // namespace dd
