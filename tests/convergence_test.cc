#include <gtest/gtest.h>

#include <cmath>

#include "inference/convergence.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"

namespace dd {
namespace {

TEST(ConvergenceTest, EasyGraphConverges) {
  SyntheticGraphOptions options;
  options.num_variables = 40;
  options.factors_per_variable = 1.5;
  options.weight_scale = 0.8;
  options.seed = 81;
  FactorGraph graph = MakeRandomGraph(options);

  ConvergenceOptions conv;
  conv.burn_in = 200;
  conv.num_samples = 2000;
  auto report = CheckConvergence(graph, conv);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->converged_fraction, 0.95);
  EXPECT_LT(report->max_r_hat, 1.3);
}

TEST(ConvergenceTest, StickyChainDetected) {
  // A long strongly-coupled chain mixes slowly; with a short run the
  // diagnostic must complain.
  FactorGraph graph = MakeChainGraph(60, 4.0, 82);
  ConvergenceOptions conv;
  conv.burn_in = 2;
  conv.num_samples = 40;
  conv.num_segments = 4;
  auto short_run = CheckConvergence(graph, conv);
  ASSERT_TRUE(short_run.ok());
  EXPECT_LT(short_run->converged_fraction, 0.9)
      << "short run on a sticky chain should NOT look converged";

  conv.burn_in = 1000;
  conv.num_samples = 8000;
  conv.num_segments = 8;
  auto long_run = CheckConvergence(graph, conv);
  ASSERT_TRUE(long_run.ok());
  EXPECT_GT(long_run->converged_fraction, short_run->converged_fraction);
}

TEST(ConvergenceTest, EvidenceSkipped) {
  FactorGraph graph;
  uint32_t v = graph.AddVariable(true, true);
  uint32_t w = graph.AddWeight(1.0, false, "w");
  ASSERT_TRUE(graph.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
  ASSERT_TRUE(graph.Finalize().ok());
  ConvergenceOptions conv;
  conv.num_samples = 100;
  auto report = CheckConvergence(graph, conv);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(std::isnan(report->r_hat[v]));
  EXPECT_DOUBLE_EQ(report->converged_fraction, 1.0);  // vacuous
}

TEST(ConvergenceTest, InvalidOptionsRejected) {
  FactorGraph graph = MakeChainGraph(5, 1.0, 1);
  ConvergenceOptions conv;
  conv.num_chains = 1;
  EXPECT_FALSE(CheckConvergence(graph, conv).ok());
  conv.num_chains = 4;
  conv.num_segments = 1;
  EXPECT_FALSE(CheckConvergence(graph, conv).ok());
}

TEST(EssTest, WhiteNoiseNearN) {
  Rng rng(83);
  std::vector<uint8_t> iid(4000);
  for (auto& s : iid) s = rng.NextBernoulli(0.5);
  double ess = EffectiveSampleSize(iid);
  EXPECT_GT(ess, 2500.0);
}

TEST(EssTest, StickySequenceMuchSmaller) {
  // Markov chain that flips with probability 0.02: heavy autocorrelation.
  Rng rng(84);
  std::vector<uint8_t> sticky(4000);
  uint8_t state = 0;
  for (auto& s : sticky) {
    if (rng.NextBernoulli(0.02)) state ^= 1;
    s = state;
  }
  double ess = EffectiveSampleSize(sticky);
  EXPECT_LT(ess, 400.0);
  EXPECT_GE(ess, 1.0);
}

TEST(EssTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({}), 0.0);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({1}), 1.0);
  std::vector<uint8_t> constant(100, 1);
  EXPECT_DOUBLE_EQ(EffectiveSampleSize(constant), 100.0);
}

}  // namespace
}  // namespace dd
