// Shard-vs-single-node differential tests (DESIGN.md §15). The contract
// under test:
//
//   * a 1-shard distributed run is *bit-identical* to the single-node
//     Learner + GibbsSampler pipeline — same weights, same marginals,
//     same graph fingerprint for the shard subgraph;
//   * multi-shard *inference* (boundary exchange over a fixed model)
//     stays within the NUMA tolerance (0.04) of the single-node
//     marginals and is deterministic per seed (two runs agree bitwise);
//   * multi-shard *learning* (model averaging) is statistically
//     indistinguishable from single-node CD-SGD: its marginal deviation
//     from the oracle stays inside the single-node seed-to-seed noise
//     envelope, measured in-test. (CD-SGD is itself a noisy estimator —
//     two single-node runs differing only in learn seed land ~0.11 mean
//     marginal diff apart on this graph — so a fixed tight tolerance on
//     learned weights would be dishonest for any sampler, sharded or
//     not.)
//   * the pipeline-level entry point RunDistributed() lands its
//     marginals exactly where Run() with the sampling strategy would.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

// One learning + inference schedule shared by the oracle and the
// distributed runs. Small enough to keep the test fast, large enough
// that the sampling noise floor sits well below the 0.04 tolerance.
struct Schedule {
  int epochs = 30;
  double learning_rate = 0.05;
  double decay = 0.99;
  double l2 = 0.01;
  int sweeps_per_epoch = 1;
  uint64_t learn_seed = 1234;
  int burn_in = 300;
  int num_samples = 3000;
  uint64_t inference_seed = 7;
};

FactorGraph MakeTestGraph(size_t num_variables, uint64_t seed) {
  SyntheticGraphOptions options;
  options.num_variables = num_variables;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  options.weight_scale = 0.5;
  options.num_weights = 16;
  options.seed = seed;
  FactorGraph graph = MakeRandomGraph(options);
  EXPECT_TRUE(graph.Finalize().ok());
  return graph;
}

struct SingleNodeRun {
  std::vector<double> weights;
  std::vector<double> marginals;
};

// The oracle: exactly what the single-node pipeline runs — Learner SGD
// followed by unconditional Gibbs marginals.
SingleNodeRun RunSingleNode(FactorGraph graph, const Schedule& s) {
  LearnOptions learn;
  learn.epochs = s.epochs;
  learn.learning_rate = s.learning_rate;
  learn.decay = s.decay;
  learn.l2 = s.l2;
  learn.sweeps_per_epoch = s.sweeps_per_epoch;
  learn.seed = s.learn_seed;
  EXPECT_TRUE(Learner(&graph).Learn(learn).ok());

  GibbsOptions gibbs;
  gibbs.burn_in = s.burn_in;
  gibbs.num_samples = s.num_samples;
  gibbs.seed = s.inference_seed;
  gibbs.clamp_evidence = false;
  GibbsSampler sampler(&graph, gibbs);
  auto marginals = sampler.RunMarginals();
  EXPECT_TRUE(marginals.ok()) << marginals.status().ToString();

  SingleNodeRun run;
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    run.weights.push_back(graph.weight_value(w));
  }
  run.marginals = *marginals;
  return run;
}

DistributedOptions MakeDistOptions(const Schedule& s, int num_shards) {
  DistributedOptions options;
  options.num_shards = num_shards;
  options.launch = DistLaunchMode::kThreads;
  options.epochs = s.epochs;
  options.learning_rate = s.learning_rate;
  options.decay = s.decay;
  options.l2 = s.l2;
  options.sweeps_per_epoch = s.sweeps_per_epoch;
  options.learn_seed = s.learn_seed;
  options.burn_in = s.burn_in;
  options.num_samples = s.num_samples;
  options.inference_seed = s.inference_seed;
  return options;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double max = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    max = std::max(max, std::fabs(a[i] - b[i]));
  }
  return max;
}

// ---- 1 shard == single node, bitwise ----------------------------------

TEST(DistDifferentialTest, OneShardBitIdenticalToSingleNode) {
  Schedule s;
  FactorGraph graph = MakeTestGraph(200, 11);
  SingleNodeRun oracle = RunSingleNode(graph, s);

  FactorGraph dist_graph = graph;
  auto result = RunDistributed(&dist_graph, MakeDistOptions(s, 1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->epochs_run, s.epochs);
  EXPECT_EQ(result->num_accumulated, static_cast<uint64_t>(s.num_samples));
  EXPECT_EQ(result->cut_edges, 0u);
  EXPECT_EQ(result->boundary_vars, 0u);

  // Weights: exact. Model averaging over one shard is sum / 1.0.
  ASSERT_EQ(result->weights.size(), oracle.weights.size());
  for (size_t w = 0; w < oracle.weights.size(); ++w) {
    EXPECT_EQ(result->weights[w], oracle.weights[w]) << "weight " << w;
  }
  // The graph's weights were written back too.
  for (uint32_t w = 0; w < dist_graph.num_weights(); ++w) {
    EXPECT_EQ(dist_graph.weight_value(w), oracle.weights[w]);
  }
  // Marginals: exact — same chain, same RNG stream, same schedule.
  ASSERT_EQ(result->marginals.size(), oracle.marginals.size());
  for (size_t v = 0; v < oracle.marginals.size(); ++v) {
    EXPECT_EQ(result->marginals[v], oracle.marginals[v]) << "variable " << v;
  }
}

TEST(DistDifferentialTest, OneShardSubgraphIsTheGraph) {
  // The 1-shard subgraph must be byte-identical to the global graph
  // (local ids are the identity map), so the shard worker's chains
  // consume the RNG stream exactly like a single-node sampler.
  FactorGraph graph = MakeTestGraph(150, 5);
  PartitionOptions popts;
  popts.num_shards = 1;
  auto partition = PartitionGraph(graph, popts);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();
  EXPECT_EQ(partition->cut_edges, 0u);
  EXPECT_TRUE(partition->boundary.empty());

  auto shard = BuildShardGraph(graph, *partition, 0);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_EQ(shard->num_owned, graph.num_variables());
  EXPECT_TRUE(shard->owned_boundary.empty());
  for (size_t v = 0; v < shard->local_to_global.size(); ++v) {
    EXPECT_EQ(shard->local_to_global[v], v);
  }
  ASSERT_TRUE(shard->graph.Finalize().ok());
  EXPECT_EQ(GraphFingerprint(shard->graph), GraphFingerprint(graph));
}

// ---- N shards: inference within tolerance, deterministic --------------

double MeanAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.empty()) return 0;
  double sum = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    sum += std::fabs(a[i] - b[i]);
  }
  return sum / static_cast<double>(a.size());
}

class DistShardCountTest : public ::testing::TestWithParam<int> {};

TEST_P(DistShardCountTest, InferenceWithinToleranceAndDeterministic) {
  // Fix the model (learned once, single-node) and compare the sharded
  // sampler's marginals against the single-node chain over the same
  // weights. This isolates the distributed machinery — partitioning,
  // factor replication, ghost pinning, boundary exchange, assembly —
  // from CD-SGD's own seed noise, so the 0.04 tolerance bites: a cut
  // factor missing from one shard's conditionals shows up here as a
  // 0.15+ boundary-variable bias.
  const int num_shards = GetParam();
  Schedule s;
  s.num_samples = 8000;  // sampling noise floor ~0.02, tolerance 0.04
  s.burn_in = 400;
  FactorGraph graph = MakeTestGraph(300, 17);
  LearnOptions learn;
  learn.epochs = s.epochs;
  learn.learning_rate = s.learning_rate;
  learn.decay = s.decay;
  learn.l2 = s.l2;
  learn.seed = s.learn_seed;
  ASSERT_TRUE(Learner(&graph).Learn(learn).ok());

  GibbsOptions gibbs;
  gibbs.burn_in = s.burn_in;
  gibbs.num_samples = s.num_samples;
  gibbs.seed = s.inference_seed;
  gibbs.clamp_evidence = false;
  GibbsSampler sampler(&graph, gibbs);
  auto oracle = sampler.RunMarginals();
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  DistributedOptions options = MakeDistOptions(s, num_shards);
  options.epochs = 0;  // inference only: the learned weights stand
  if (num_shards == 2) {
    // Cover the unix-socket transport on one of the configurations.
    options.endpoint =
        "unix:" + ::testing::TempDir() + "dd_dist_diff.sock";
  }

  FactorGraph run1 = graph;
  auto result1 = RunDistributed(&run1, options);
  ASSERT_TRUE(result1.ok()) << result1.status().ToString();
  EXPECT_EQ(result1->num_accumulated, static_cast<uint64_t>(s.num_samples));
  EXPECT_GT(result1->boundary_vars, 0u);
  EXPECT_LE(result1->cut_edges, result1->initial_cut_edges);

  // Weights pass through learning untouched (epochs == 0).
  ASSERT_EQ(result1->weights.size(), graph.num_weights());
  for (uint32_t w = 0; w < graph.num_weights(); ++w) {
    EXPECT_EQ(result1->weights[w], graph.weight_value(w)) << "weight " << w;
  }
  // The boundary-exchanged marginals track the single-node chain within
  // the NUMA tolerance.
  ASSERT_EQ(result1->marginals.size(), oracle->size());
  EXPECT_LE(MaxAbsDiff(result1->marginals, *oracle), 0.04);

  // Determinism: an identical second run agrees bitwise.
  FactorGraph run2 = graph;
  auto result2 = RunDistributed(&run2, options);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_EQ(result1->marginals, result2->marginals);
  EXPECT_EQ(result1->weights, result2->weights);
  EXPECT_EQ(result1->cut_edges, result2->cut_edges);
}

TEST_P(DistShardCountTest, LearningStaysInSeedNoiseEnvelope) {
  // End-to-end learning + inference. Model averaging cannot reproduce
  // the single-node weight trajectory (different chains see different
  // samples), but it must be *statistically equivalent*: its marginal
  // deviation from the oracle stays within the single-node learner's
  // own seed-to-seed noise, measured right here rather than hard-coded.
  // Everything is seeded, so the assertion is deterministic.
  const int num_shards = GetParam();
  Schedule s;
  const FactorGraph graph = MakeTestGraph(300, 17);
  SingleNodeRun oracle = RunSingleNode(graph, s);

  Schedule reseeded = s;
  reseeded.learn_seed = 999;
  SingleNodeRun reseeded_run = RunSingleNode(graph, reseeded);
  const double envelope = MeanAbsDiff(reseeded_run.marginals, oracle.marginals);
  ASSERT_GT(envelope, 0.0);

  FactorGraph dist_graph = graph;
  auto result = RunDistributed(&dist_graph, MakeDistOptions(s, num_shards));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (double w : result->weights) EXPECT_TRUE(std::isfinite(w));
  ASSERT_EQ(result->marginals.size(), oracle.marginals.size());
  const double dist_diff = MeanAbsDiff(result->marginals, oracle.marginals);
  // Measured: 1.1x (2 shards) / 1.3x (4 shards) the envelope; 2x flags
  // a real regression without penalizing inherent CD noise.
  EXPECT_LE(dist_diff, 2.0 * envelope)
      << "distributed learning drifted beyond single-node seed noise: "
      << dist_diff << " vs envelope " << envelope;
}

INSTANTIATE_TEST_SUITE_P(Shards, DistShardCountTest, ::testing::Values(2, 4));

// ---- Option validation ------------------------------------------------

TEST(DistDifferentialTest, RejectsBadOptions) {
  FactorGraph graph = MakeTestGraph(20, 3);
  Schedule s;

  DistributedOptions zero_shards = MakeDistOptions(s, 0);
  EXPECT_EQ(RunDistributed(&graph, zero_shards).status().code(),
            StatusCode::kInvalidArgument);

  DistributedOptions too_many = MakeDistOptions(s, 1000);
  EXPECT_EQ(RunDistributed(&graph, too_many).status().code(),
            StatusCode::kInvalidArgument);

  DistributedOptions no_samples = MakeDistOptions(s, 1);
  no_samples.num_samples = 0;
  EXPECT_EQ(RunDistributed(&graph, no_samples).status().code(),
            StatusCode::kInvalidArgument);

  FactorGraph unfinalized;
  unfinalized.AddVariable();
  EXPECT_FALSE(RunDistributed(&unfinalized, MakeDistOptions(s, 1)).ok());
}

// ---- Pipeline entry point ---------------------------------------------

PipelineOptions FastPipelineOptions() {
  PipelineOptions options;
  options.learn.epochs = 80;
  options.learn.learning_rate = 0.05;
  options.learn.decay = 0.99;
  options.learn.l2 = 0.005;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.strategy = PipelineOptions::Strategy::kSampling;
  return options;
}

TEST(DistPipelineTest, OneShardRunDistributedMatchesRun) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 40;
  corpus_opts.seed = 21;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);
  SpouseAppOptions app;

  auto reference = MakeSpousePipeline(corpus, app, FastPipelineOptions());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE((*reference)->Run().ok());

  auto sharded = MakeSpousePipeline(corpus, app, FastPipelineOptions());
  ASSERT_TRUE(sharded.ok());
  DistributedOptions dist;
  dist.num_shards = 1;
  dist.launch = DistLaunchMode::kThreads;
  auto result = (*sharded)->RunDistributed(dist);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE((*sharded)->has_run());

  for (const char* relation : {"MarriedMention", "MarriedPair"}) {
    auto want = (*reference)->Marginals(relation);
    auto got = (*sharded)->Marginals(relation);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(want->size(), got->size()) << relation;
    for (size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*want)[i].first, (*got)[i].first);
      EXPECT_EQ((*want)[i].second, (*got)[i].second)
          << relation << " tuple " << i;
    }
  }
  // Learning + inference time is reported jointly (DESIGN.md §15).
  EXPECT_GT((*sharded)->timings().inference_seconds, 0.0);
  EXPECT_EQ((*sharded)->timings().learning_seconds, 0.0);
}

TEST(DistPipelineTest, TwoShardsProduceCalibratedMarginals) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 40;
  corpus_opts.seed = 22;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);
  auto pipeline =
      MakeSpousePipeline(corpus, SpouseAppOptions(), FastPipelineOptions());
  ASSERT_TRUE(pipeline.ok());
  DistributedOptions dist;
  dist.num_shards = 2;
  dist.launch = DistLaunchMode::kThreads;
  auto result = (*pipeline)->RunDistributed(dist);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->boundary_vars, 0u);

  auto marginals = (*pipeline)->Marginals("MarriedMention");
  ASSERT_TRUE(marginals.ok());
  EXPECT_FALSE(marginals->empty());
  for (const auto& [tuple, p] : *marginals) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace dd
