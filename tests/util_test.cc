#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/crc32c.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dd {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Check value from the CRC catalogue (CRC-32C over "123456789"); pins
  // the hardware and software paths to the reference polynomial.
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  // RFC 3720 B.4 test patterns.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  // Splitting the input at every position must give the one-shot digest,
  // covering all slice-by-8 remainder lengths.
  std::string data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<char>(i * 37));
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "split at " << cut;
  }
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status err = Status::NotFound("thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.message(), "thing");
  EXPECT_EQ(err.ToString(), "NotFound: thing");
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  DD_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

Result<int> MakeResult(bool ok) {
  if (ok) return 42;
  return Status::InvalidArgument("nope");
}
Result<int> Chained(bool ok) {
  DD_ASSIGN_OR_RETURN(int x, MakeResult(ok));
  return x + 1;
}

TEST(ResultTest, ValueAndError) {
  auto good = MakeResult(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = MakeResult(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Chained(true), 43);
  EXPECT_FALSE(Chained(false).ok());
}

TEST(RngTest, DeterministicAndSeedSensitive) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(7);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    uint64_t n = rng.NextBounded(10);
    EXPECT_LT(n, 10u);
    int64_t k = rng.NextInt(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(2);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespace) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, TrimLowerAffixes) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(StringUtilTest, JoinAndFormat) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, DigitAndCapitalChecks) {
  EXPECT_TRUE(IsAllDigits("123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsCapitalized("Abc"));
  EXPECT_FALSE(IsCapitalized("abc"));
  EXPECT_FALSE(IsCapitalized(""));
}

TEST(HashTest, StableAndSensitive) {
  EXPECT_EQ(Fnv1a("hello"), Fnv1a("hello"));
  EXPECT_NE(Fnv1a("hello"), Fnv1a("hellp"));
  // Known FNV-1a vector: empty string hashes to the offset basis.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelFor) {
  ThreadPool pool(3);
  std::vector<int> out(50, 0);
  pool.ParallelFor(50, [&](size_t i) { out[i] = static_cast<int>(i) * 2; });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[i], i * 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace dd
