// Differential property harness for morsel-parallel grounding: random
// synthetic DDlog programs + corpora are grounded with num_threads=1
// (the serial oracle) and with {2,3,4,8} worker threads, and the
// resulting factor graphs — serialized bytes, snapshot CRC, compiled
// kernel streams, stats, changed-variable sets — must be bit-identical,
// for the initial grounding, after an incremental ApplyDeltas batch, and
// after a full Reground.

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/pipeline.h"
#include "core/udf.h"
#include "factor/io.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"
#include "testdata/synthetic_programs.h"
#include "util/crc32c.h"

namespace dd {
namespace {

struct GroundingFingerprint {
  std::string graph_text;
  uint32_t crc = 0;
  std::vector<uint32_t> kernel_stream;
  std::vector<uint32_t> kernel_offsets;
  std::vector<double> var_bias;
  GroundingStats stats;
  std::vector<uint32_t> changed_vars;
  std::vector<std::pair<uint32_t, bool>> holdout;
  std::vector<uint64_t> weight_observations;
};

GroundingFingerprint Fingerprint(const Grounder& grounder) {
  GroundingFingerprint fp;
  fp.graph_text = SerializeGraph(grounder.graph());
  fp.crc = Crc32c(fp.graph_text.data(), fp.graph_text.size());
  fp.kernel_stream = grounder.graph().kernel_stream();
  fp.kernel_offsets = grounder.graph().kernel_offsets();
  fp.var_bias = grounder.graph().var_bias();
  fp.stats = grounder.stats();
  fp.changed_vars = grounder.changed_vars();
  fp.holdout = grounder.holdout();
  fp.weight_observations = grounder.weight_observations();
  return fp;
}

void ExpectIdentical(const GroundingFingerprint& oracle,
                     const GroundingFingerprint& parallel, const char* phase) {
  SCOPED_TRACE(phase);
  EXPECT_EQ(oracle.crc, parallel.crc);
  ASSERT_EQ(oracle.graph_text, parallel.graph_text);
  EXPECT_EQ(oracle.kernel_stream, parallel.kernel_stream);
  EXPECT_EQ(oracle.kernel_offsets, parallel.kernel_offsets);
  EXPECT_EQ(oracle.var_bias, parallel.var_bias);
  EXPECT_EQ(oracle.changed_vars, parallel.changed_vars);
  EXPECT_EQ(oracle.holdout, parallel.holdout);
  EXPECT_EQ(oracle.weight_observations, parallel.weight_observations);
  EXPECT_EQ(oracle.stats.num_variables, parallel.stats.num_variables);
  EXPECT_EQ(oracle.stats.num_factors, parallel.stats.num_factors);
  EXPECT_EQ(oracle.stats.num_weights, parallel.stats.num_weights);
  EXPECT_EQ(oracle.stats.num_evidence, parallel.stats.num_evidence);
  EXPECT_EQ(oracle.stats.num_conflicting_labels,
            parallel.stats.num_conflicting_labels);
  EXPECT_EQ(oracle.stats.num_orphan_evidence, parallel.stats.num_orphan_evidence);
  EXPECT_EQ(oracle.stats.num_holdout, parallel.stats.num_holdout);
}

/// Ground the seed's workload end to end (initialize, incremental delta
/// batch, full reground) at the given thread count; fingerprint each
/// phase. A fresh workload + catalog per call keeps runs independent.
std::vector<GroundingFingerprint> GroundAll(uint64_t seed, size_t num_threads) {
  SyntheticProgramOptions sopt;
  sopt.seed = seed;
  auto workload = MakeSyntheticWorkload(sopt);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  Catalog catalog;
  EXPECT_TRUE(PopulateCatalog(*workload, &catalog).ok());
  UdfRegistry udfs;
  RegisterBuiltinUdfs(&udfs);

  GroundingOptions gopt;
  gopt.num_threads = num_threads;
  // Tiny morsels so even these small corpora fan out into many morsels
  // and the ordered merge actually has something to merge.
  gopt.morsel_size = 16;
  gopt.holdout_fraction = 0.2;

  std::vector<GroundingFingerprint> fps;
  Grounder grounder(&catalog, &workload->program, &udfs, gopt);
  Status st = grounder.Initialize();
  EXPECT_TRUE(st.ok()) << st.ToString();
  fps.push_back(Fingerprint(grounder));

  st = grounder.ApplyDeltas(workload->delta);
  EXPECT_TRUE(st.ok()) << st.ToString();
  fps.push_back(Fingerprint(grounder));

  st = grounder.Reground();
  EXPECT_TRUE(st.ok()) << st.ToString();
  fps.push_back(Fingerprint(grounder));
  return fps;
}

class ParallelGroundingTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(ParallelGroundingTest, MatchesSerialOracle) {
  const auto [seed, threads] = GetParam();
  std::vector<GroundingFingerprint> oracle = GroundAll(seed, 1);
  std::vector<GroundingFingerprint> parallel = GroundAll(seed, threads);
  ASSERT_EQ(oracle.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);
  ExpectIdentical(oracle[0], parallel[0], "initialize");
  ExpectIdentical(oracle[1], parallel[1], "apply_deltas");
  ExpectIdentical(oracle[2], parallel[2], "reground");
}

INSTANTIATE_TEST_SUITE_P(
    SeedByThreads, ParallelGroundingTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13),
                       ::testing::Values<size_t>(2, 3, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, size_t>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

/// Recursive variant: the transitive-closure SCC takes the semi-naive
/// path, where each fixpoint round is itself morsel-parallel and stratum
/// evaluation overlaps the factor build on the shared task graph.
/// Incremental maintenance is unimplemented for recursive programs, so
/// the end-to-end sequence is initialize -> (rejected delta) -> reground.
std::vector<GroundingFingerprint> GroundRecursive(uint64_t seed,
                                                  size_t num_threads) {
  SyntheticProgramOptions sopt;
  sopt.seed = seed;
  sopt.recursive = true;
  auto workload = MakeSyntheticWorkload(sopt);
  EXPECT_TRUE(workload.ok()) << workload.status().ToString();

  Catalog catalog;
  EXPECT_TRUE(PopulateCatalog(*workload, &catalog).ok());
  UdfRegistry udfs;
  RegisterBuiltinUdfs(&udfs);

  GroundingOptions gopt;
  gopt.num_threads = num_threads;
  gopt.morsel_size = 16;
  gopt.holdout_fraction = 0.2;

  std::vector<GroundingFingerprint> fps;
  Grounder grounder(&catalog, &workload->program, &udfs, gopt);
  Status st = grounder.Initialize();
  EXPECT_TRUE(st.ok()) << st.ToString();
  fps.push_back(Fingerprint(grounder));

  // DRed cannot maintain recursive programs; the error must be the same
  // at every thread count.
  EXPECT_EQ(grounder.ApplyDeltas(workload->delta).code(),
            StatusCode::kUnimplemented);

  st = grounder.Reground();
  EXPECT_TRUE(st.ok()) << st.ToString();
  fps.push_back(Fingerprint(grounder));
  return fps;
}

class RecursiveParallelGroundingTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(RecursiveParallelGroundingTest, MatchesSerialOracle) {
  const auto [seed, threads] = GetParam();
  std::vector<GroundingFingerprint> oracle = GroundRecursive(seed, 1);
  std::vector<GroundingFingerprint> parallel = GroundRecursive(seed, threads);
  ASSERT_EQ(oracle.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  ExpectIdentical(oracle[0], parallel[0], "initialize");
  ExpectIdentical(oracle[1], parallel[1], "reground");
}

INSTANTIATE_TEST_SUITE_P(
    SeedByThreads, RecursiveParallelGroundingTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 5, 8, 13),
                       ::testing::Values<size_t>(2, 3, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, size_t>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// The overlapped pipeline schedule (phases as task-graph nodes, learning
// overlapping the inference warm-up, recursive strata overlapping the
// factor build) must produce the same bytes as the strictly sequential
// schedule: identical factor graph and identical marginals.
TEST(OverlappedPipelineTest, MatchesSequentialSchedule) {
  SyntheticProgramOptions sopt;
  sopt.seed = 5;
  sopt.recursive = true;
  auto run = [&](size_t num_threads) {
    auto workload = MakeSyntheticWorkload(sopt);
    EXPECT_TRUE(workload.ok()) << workload.status().ToString();
    PipelineOptions popt;
    popt.num_threads = num_threads;
    popt.holdout_fraction = 0.2;
    DeepDivePipeline pipeline(popt);
    EXPECT_TRUE(pipeline.LoadProgram(workload->ddlog).ok());
    for (const Tuple& t : workload->tokens) pipeline.QueueDelta("Token", t, 1);
    for (const Tuple& t : workload->pairs) pipeline.QueueDelta("Pair", t, 1);
    for (const Tuple& t : workload->links) pipeline.QueueDelta("Link", t, 1);
    for (const Tuple& t : workload->labels) pipeline.QueueDelta("Q_Ev", t, 1);
    Status st = pipeline.Run();
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::string graph_text = SerializeGraph(pipeline.grounder()->graph());
    auto marginals = pipeline.Marginals("Q");
    EXPECT_TRUE(marginals.ok()) << marginals.status().ToString();
    std::vector<double> probs;
    for (const auto& [tuple, prob] : *marginals) probs.push_back(prob);
    return std::make_pair(std::move(graph_text), std::move(probs));
  };
  auto [oracle_graph, oracle_probs] = run(1);
  auto [overlap_graph, overlap_probs] = run(4);
  EXPECT_EQ(Crc32c(oracle_graph.data(), oracle_graph.size()),
            Crc32c(overlap_graph.data(), overlap_graph.size()));
  ASSERT_EQ(oracle_graph, overlap_graph);
  EXPECT_EQ(oracle_probs, overlap_probs);
}

// Larger single-shot case: default morsel size, bigger corpus, hardware
// default thread count (num_threads = 0) — the configuration production
// callers get without touching any knob.
TEST(ParallelGroundingScaleTest, HardwareDefaultMatchesSerial) {
  SyntheticProgramOptions sopt;
  sopt.seed = 21;
  sopt.num_sentences = 400;
  sopt.tokens_per_sentence = 8;
  sopt.max_pairs_per_sentence = 3;

  auto make = [&](size_t num_threads) {
    auto workload = MakeSyntheticWorkload(sopt);
    EXPECT_TRUE(workload.ok()) << workload.status().ToString();
    Catalog catalog;
    EXPECT_TRUE(PopulateCatalog(*workload, &catalog).ok());
    UdfRegistry udfs;
    RegisterBuiltinUdfs(&udfs);
    GroundingOptions gopt;
    gopt.num_threads = num_threads;
    Grounder grounder(&catalog, &workload->program, &udfs, gopt);
    Status st = grounder.Initialize();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return Fingerprint(grounder);
  };
  GroundingFingerprint oracle = make(1);
  GroundingFingerprint parallel = make(0);  // hardware concurrency
  ExpectIdentical(oracle, parallel, "initialize");
}

}  // namespace
}  // namespace dd
