#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "factor/io.h"
#include "storage/snapshot.h"

namespace dd {
namespace {

// Every test leaves the process-wide registry clean.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(FailpointTest, DisabledSiteDoesNothing) {
  EXPECT_FALSE(Failpoints::armed());
  Status status;
  DD_FAILPOINT("test.disabled", &status);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(Failpoints::Instance().fired_count("test.disabled"), 0u);
}

TEST_F(FailpointTest, SitesSelfRegister) {
  Status status;
  DD_FAILPOINT("test.registered", &status);
  auto sites = Failpoints::Instance().registered_sites();
  EXPECT_NE(std::find(sites.begin(), sites.end(), "test.registered"),
            sites.end());
}

TEST_F(FailpointTest, EnabledSiteInjectsConfiguredCode) {
  FailpointConfig config;
  config.code = StatusCode::kCorruption;
  Failpoints::Instance().Enable("test.error", config);
  EXPECT_TRUE(Failpoints::armed());

  Status status;
  DD_FAILPOINT("test.error", &status);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("test.error"), std::string::npos);
  EXPECT_EQ(Failpoints::Instance().fired_count("test.error"), 1u);
}

TEST_F(FailpointTest, SkipAndMaxHits) {
  FailpointConfig config;
  config.skip = 2;
  config.max_hits = 1;
  Failpoints::Instance().Enable("test.window", config);

  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    Status status;
    DD_FAILPOINT("test.window", &status);
    if (!status.ok()) ++fired;
  }
  // Hits 1-2 skipped, hit 3 fires, then max_hits stops everything.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(Failpoints::Instance().fired_count("test.window"), 1u);
}

TEST_F(FailpointTest, ProbabilityStreamIsDeterministic) {
  auto run = [] {
    FailpointConfig config;
    config.probability = 0.5;
    Failpoints::Instance().Enable("test.prob", config);
    Failpoints::Instance().Seed(123);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      Status status;
      DD_FAILPOINT("test.prob", &status);
      pattern.push_back(!status.ok());
    }
    Failpoints::Instance().Reset();
    return pattern;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Sanity: p=0.5 over 64 draws fires some but not all of the time.
  int fired = 0;
  for (bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

TEST_F(FailpointTest, ShortWriteShrinksByteCount) {
  FailpointConfig config;
  config.action = FailpointAction::kShortWrite;
  config.keep_fraction = 0.25;
  Failpoints::Instance().Enable("test.write", config);

  size_t n = 1000;
  Status status;
  DD_FAILPOINT_WRITE("test.write", n, &status);
  EXPECT_TRUE(status.ok());  // short writes do not inject a Status
  EXPECT_EQ(n, 250u);
}

TEST_F(FailpointTest, CrashHookIsTestVisible) {
  FailpointConfig config;
  config.action = FailpointAction::kCrash;
  Failpoints::Instance().Enable("test.crash", config);
  std::string crashed_at;
  Failpoints::Instance().SetCrashHook(
      [&](const std::string& name) { crashed_at = name; });

  Status status;
  DD_FAILPOINT("test.crash", &status);
  EXPECT_TRUE(status.ok());  // the returning hook leaves the site unharmed
  EXPECT_EQ(crashed_at, "test.crash");
}

TEST_F(FailpointTest, DisableRearmsCorrectly) {
  Failpoints::Instance().Enable("test.a", FailpointConfig());
  Failpoints::Instance().Enable("test.b", FailpointConfig());
  Failpoints::Instance().Disable("test.a");
  EXPECT_TRUE(Failpoints::armed());
  Failpoints::Instance().Disable("test.b");
  EXPECT_FALSE(Failpoints::armed());

  Status status;
  DD_FAILPOINT("test.a", &status);
  EXPECT_TRUE(status.ok());
}

TEST_F(FailpointTest, ConfigureParsesSpecs) {
  ASSERT_TRUE(Failpoints::Instance()
                  .Configure("test.one=error;test.two=short_write(keep=0.1);"
                             "test.three=ioerror(p=1.0,hits=2,skip=1)")
                  .ok());
  Status status;
  DD_FAILPOINT("test.one", &status);
  EXPECT_EQ(status.code(), StatusCode::kInternal);

  status = Status::OK();
  DD_FAILPOINT("test.three", &status);  // skipped (skip=1)
  EXPECT_TRUE(status.ok());
  DD_FAILPOINT("test.three", &status);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(FailpointTest, ConfigureRejectsMalformedSpecs) {
  auto& fp = Failpoints::Instance();
  EXPECT_EQ(fp.Configure("justaname").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("=error").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("a.b=explode").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("a.b=error(p=high)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("a.b=error(p)").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("a.b=error(bogus=1)").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fp.Configure("a.b=error(p=0.5").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailpointTest, CorruptionActionAlias) {
  ASSERT_TRUE(Failpoints::Instance().Configure("test.corrupt=corruption").ok());
  Status status;
  DD_FAILPOINT("test.corrupt", &status);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

// ---- Sites on the MappedSnapshot read path --------------------------------

std::string WriteTinySnapshot(const std::string& name) {
  GraphSnapshot snapshot;
  snapshot.has_graph = true;
  uint32_t w = snapshot.graph.AddWeight(0.5, false, "fp-test-weight");
  uint32_t v = snapshot.graph.AddVariable();
  EXPECT_TRUE(
      snapshot.graph.AddFactor(FactorFunc::kIsTrue, w, {{v, true}}).ok());
  EXPECT_TRUE(snapshot.graph.Finalize().ok());
  std::string path = ::testing::TempDir() + name;
  EXPECT_TRUE(WriteGraphSnapshot(snapshot, path).ok());
  return path;
}

TEST_F(FailpointTest, SnapshotMmapSiteForcesHeapFallback) {
  std::string path = WriteTinySnapshot("fp_mmap_fallback.snap");
  // Baseline: the platform maps the file.
  {
    auto snap = MappedSnapshot::Open(path);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(snap->mapped());
  }
  // With the site armed, Open succeeds through the 8-aligned heap
  // fallback instead of failing — mmap refusal is a degradation, not an
  // error.
  Failpoints::Instance().Enable(failpoints::kSnapshotMmap, FailpointConfig());
  auto snap = MappedSnapshot::Open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap->mapped());
  EXPECT_EQ(Failpoints::Instance().fired_count(failpoints::kSnapshotMmap), 1u);
  // The fallback still parses and serves sections.
  auto pool = snap->Pool();
  ASSERT_TRUE(pool.ok());
  EXPECT_TRUE(snap->Graph(*pool).ok());
}

TEST_F(FailpointTest, SnapshotValidateSiteInjectsBeforeParse) {
  std::string path = WriteTinySnapshot("fp_validate.snap");
  FailpointConfig config;
  config.code = StatusCode::kCorruption;
  Failpoints::Instance().Enable(failpoints::kSnapshotValidate, config);
  auto snap = MappedSnapshot::Open(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
  Failpoints::Instance().Reset();
  EXPECT_TRUE(MappedSnapshot::Open(path).ok());
}

}  // namespace
}  // namespace dd
