// ThreadPool + ParallelMorsels contracts the parallel grounder depends
// on: work decomposition independent of scheduling, queue drain on
// shutdown, Status-based (exception-free) error propagation with a
// deterministic winner, and safety under many concurrent producers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/parallel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dd {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitAllowsReuse) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

// Destroying the pool with tasks still queued must drain the queue, not
// drop it: no task the grounder submitted may silently vanish.
TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): the destructor must finish the backlog itself.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ManyProducersStress) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  constexpr int kProducers = 8;
  constexpr int kTasksEach = 250;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), kProducers * kTasksEach);
}

// The morsel decomposition is a pure function of (n, morsel_size):
// every thread count must produce exactly the same (index, begin, end)
// triples — the property the deterministic merge rule builds on.
TEST(ParallelMorselsTest, DecompositionIndependentOfThreadCount) {
  constexpr size_t kN = 103;
  constexpr size_t kMorsel = 10;
  auto decompose = [&](ThreadPool* pool) {
    std::vector<std::pair<size_t, size_t>> spans(NumMorsels(kN, kMorsel));
    Status st = ParallelMorsels(pool, kN, kMorsel,
                                [&](size_t m, size_t begin, size_t end) {
                                  spans[m] = {begin, end};
                                  return Status::OK();
                                });
    EXPECT_TRUE(st.ok());
    return spans;
  };
  auto serial = decompose(nullptr);
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<size_t, size_t>{0, 10}));
  EXPECT_EQ(serial.back(), (std::pair<size_t, size_t>{100, 103}));
  for (size_t threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(decompose(&pool), serial) << "threads=" << threads;
  }
}

TEST(ParallelMorselsTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  Status st = ParallelMorsels(&pool, kN, 7, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << "i=" << i;
}

// Errors travel as Status values, never exceptions, and the reported
// failure is the lowest-indexed failing morsel regardless of which
// worker finished first — so error output is reproducible.
TEST(ParallelMorselsTest, LowestIndexedErrorWins) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    Status st = ParallelMorsels(&pool, 100, 10, [&](size_t m, size_t, size_t) {
      if (m == 7) return Status::Internal("late failure");
      if (m == 3) {
        // Make the earlier failure slower so a naive first-to-finish
        // implementation would report the wrong one.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return Status::InvalidArgument("early failure");
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(st.message(), "early failure");
  }
}

// All morsels run even when one fails (no cancellation): the per-morsel
// buffers the grounder merges are always fully populated or the call
// errored — never a torn mix.
TEST(ParallelMorselsTest, AllMorselsRunDespiteFailure) {
  ThreadPool pool(4);
  constexpr size_t kMorsels = 20;
  std::vector<std::atomic<int>> ran(kMorsels);
  for (auto& r : ran) r.store(0);
  Status st = ParallelMorsels(&pool, kMorsels, 1, [&](size_t m, size_t, size_t) {
    ran[m].fetch_add(1, std::memory_order_relaxed);
    return m == 0 ? Status::Internal("boom") : Status::OK();
  });
  EXPECT_FALSE(st.ok());
  for (size_t m = 0; m < kMorsels; ++m) EXPECT_EQ(ran[m].load(), 1) << "m=" << m;
}

TEST(ParallelMorselsTest, InlineWhenPoolIsNull) {
  std::thread::id caller = std::this_thread::get_id();
  Status st = ParallelMorsels(nullptr, 50, 10, [&](size_t, size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
}

TEST(ParallelMorselsTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  Status st = ParallelMorsels(&pool, 0, 16, [&](size_t, size_t, size_t) {
    called = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(called);
}

// WaitGroup from inside a pool task: the waiter must help drain the
// queue instead of parking, or a pool whose workers all wait on inner
// groups deadlocks. This is the discipline TaskGraph nodes rely on when
// they fan out morsels on the same pool.
TEST(ThreadPoolTest, NestedWaitGroupInsidePoolTask) {
  ThreadPool pool(2);
  std::atomic<int> inner_count{0};
  std::atomic<int> outer_count{0};
  TaskGroup outer;
  // More outer tasks than workers, each blocking on its own inner group:
  // without help-while-waiting the pool would starve immediately.
  for (int t = 0; t < 4; ++t) {
    pool.Submit(&outer, [&pool, &inner_count, &outer_count] {
      TaskGroup inner;
      for (int i = 0; i < 8; ++i) {
        pool.Submit(&inner, [&inner_count] {
          inner_count.fetch_add(1, std::memory_order_relaxed);
        });
      }
      pool.WaitGroup(&inner);
      outer_count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitGroup(&outer);
  EXPECT_EQ(outer_count.load(), 4);
  EXPECT_EQ(inner_count.load(), 32);
}

TEST(ParallelForTest, CoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v.store(0);
  pool.ParallelFor(visits.size(), [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < visits.size(); ++i) EXPECT_EQ(visits[i].load(), 1);
}

}  // namespace
}  // namespace dd
