// Fault-injection tests for the distributed runtime (DESIGN.md §15),
// driven through the dist.{connect,send,recv,partition,barrier}
// failpoints:
//
//   * transient socket faults (kUnavailable/kIoError at a frame
//     boundary) are retried with backoff and leave the result
//     bit-identical to a clean run;
//   * corruption (a poisoned frame, a bad CRC) fails loudly and is
//     never retried;
//   * a shard killed mid-epoch in fork mode is respawned, resumes from
//     its checkpoint, and the finished run is bit-identical to an
//     uninterrupted one;
//   * a shard that keeps dying exhausts its restart budget and the run
//     fails instead of looping.
//
// Labeled death (kills forked children) + failpoints (the CI fault
// sweep replays every registered site against this binary).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dist/coordinator.h"
#include "dist/wire.h"
#include "testdata/synthetic_graphs.h"
#include "util/crc32c.h"
#include "util/deadline.h"
#include "util/failpoint.h"

namespace dd {
namespace {

FactorGraph MakeFaultGraph() {
  SyntheticGraphOptions options;
  options.num_variables = 80;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  options.weight_scale = 0.5;
  options.num_weights = 8;
  options.seed = 41;
  FactorGraph graph = MakeRandomGraph(options);
  EXPECT_TRUE(graph.Finalize().ok());
  return graph;
}

// A schedule small enough that fork-mode kill/resume tests stay fast:
// 6 learning exchanges, then 8 inference exchanges of 8 sweeps each.
DistributedOptions FastDistOptions() {
  DistributedOptions options;
  options.num_shards = 2;
  options.launch = DistLaunchMode::kThreads;
  options.epochs = 6;
  options.learning_rate = 0.05;
  options.burn_in = 16;
  options.num_samples = 48;
  options.sweeps_per_exchange = 8;
  return options;
}

class DistFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }

  std::string TempDirPath(const std::string& name) {
    return ::testing::TempDir() + name;
  }
};

// ---- Transient faults are retried -------------------------------------

TEST_F(DistFaultTest, TransientConnectFaultIsRetried) {
  FactorGraph clean_graph = MakeFaultGraph();
  auto clean = RunDistributed(&clean_graph, FastDistOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Both workers' first dial attempt fails with a retryable I/O error;
  // DialRetry backs off and the run still completes, bit-identically.
  ASSERT_TRUE(
      Failpoints::Instance().Configure("dist.connect=ioerror(hits=2)").ok());
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, FastDistOptions());
  EXPECT_EQ(Failpoints::Instance().fired_count("dist.connect"), 2u);
  Failpoints::Instance().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->marginals, clean->marginals);
  EXPECT_EQ(result->weights, clean->weights);
}

TEST_F(DistFaultTest, TransientSendRecvFaultsAreRetried) {
  FactorGraph clean_graph = MakeFaultGraph();
  auto clean = RunDistributed(&clean_graph, FastDistOptions());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Frame-boundary send/recv faults: the failpoints fire before any byte
  // moves, so the retry wrappers resend the same frame in place.
  ASSERT_TRUE(Failpoints::Instance()
                  .Configure("dist.send=ioerror(skip=3,hits=2);"
                             "dist.recv=ioerror(skip=5,hits=2)")
                  .ok());
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, FastDistOptions());
  EXPECT_GE(Failpoints::Instance().fired_count("dist.send"), 1u);
  EXPECT_GE(Failpoints::Instance().fired_count("dist.recv"), 1u);
  Failpoints::Instance().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->marginals, clean->marginals);
  EXPECT_EQ(result->weights, clean->weights);
}

// ---- Corruption is permanent ------------------------------------------

TEST_F(DistFaultTest, CorruptedSendPoisonsTheRun) {
  // skip past part of the handshake so the poison lands mid-protocol;
  // wherever it fires, corruption must fail the run, not be retried.
  ASSERT_TRUE(Failpoints::Instance()
                  .Configure("dist.send=corruption(skip=4,hits=1)")
                  .ok());
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, FastDistOptions());
  Failpoints::Instance().Reset();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption)
      << result.status().ToString();
}

TEST_F(DistFaultTest, PartitionFailpointFailsLoudly) {
  ASSERT_TRUE(
      Failpoints::Instance().Configure("dist.partition=error(hits=1)").ok());
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, FastDistOptions());
  EXPECT_EQ(Failpoints::Instance().fired_count("dist.partition"), 1u);
  Failpoints::Instance().Reset();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ---- Wire-level corruption: a bad frame off a real socket -------------

int RawDial(const std::string& endpoint) {
  // endpoint is "tcp:127.0.0.1:<port>" from WireListener::Listen.
  const size_t colon = endpoint.rfind(':');
  EXPECT_NE(colon, std::string::npos);
  const int port = std::stoi(endpoint.substr(colon + 1));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void RawSend(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

TEST_F(DistFaultTest, BadFrameCrcIsCorruption) {
  auto listener = WireListener::Listen("tcp:127.0.0.1:0");
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  const int fd = RawDial(listener->endpoint());
  auto conn = listener->Accept(Deadline::AfterMillis(5000));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  // A well-formed frame except for the CRC word.
  const std::string payload = "boundary bits";
  std::string checked;
  PutU32(&checked, 7);  // type
  PutU64(&checked, payload.size());
  checked += payload;
  std::string frame;
  PutU32(&frame, kWireMagic);
  frame += checked;
  PutU32(&frame, Crc32c(checked.data(), checked.size()) ^ 0xdeadbeef);
  RawSend(fd, frame);

  auto received = conn->RecvFrame(Deadline::AfterMillis(5000));
  EXPECT_EQ(received.status().code(), StatusCode::kCorruption)
      << received.status().ToString();
  ::close(fd);
}

TEST_F(DistFaultTest, BadMagicIsCorruption) {
  auto listener = WireListener::Listen("tcp:127.0.0.1:0");
  ASSERT_TRUE(listener.ok());

  const int fd = RawDial(listener->endpoint());
  auto conn = listener->Accept(Deadline::AfterMillis(5000));
  ASSERT_TRUE(conn.ok());

  std::string frame;
  PutU32(&frame, 0x4b4f4f4c);  // not "DDW1"
  PutU32(&frame, 1);
  PutU64(&frame, 0);
  PutU32(&frame, 0);
  RawSend(fd, frame);

  auto received = conn->RecvFrame(Deadline::AfterMillis(5000));
  EXPECT_EQ(received.status().code(), StatusCode::kCorruption);
  ::close(fd);
}

// ---- Kill a shard mid-epoch; resume bit-identically -------------------

// skip=2 lands the crash at the third learning exchange; skip=8 lands
// it in the middle of the inference rounds (6 learning barriers come
// first). Both must resume from the shard checkpoint bit-identically.
class DistKillShardTest : public DistFaultTest,
                          public ::testing::WithParamInterface<int> {};

TEST_P(DistKillShardTest, RespawnedShardResumesBitIdentically) {
  DistributedOptions options = FastDistOptions();
  options.launch = DistLaunchMode::kForkedProcesses;
  options.checkpoint_dir = TempDirPath("dd_dist_kill_clean");

  FactorGraph clean_graph = MakeFaultGraph();
  auto clean = RunDistributed(&clean_graph, options);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->restarts, 0);

  // Same run, but shard 1's child process crashes (hard _Exit, as a real
  // kill would) at its chosen exchange barrier — after computing, before
  // checkpointing that exchange.
  DistributedOptions faulty = options;
  faulty.checkpoint_dir = TempDirPath("dd_dist_kill_faulty");
  faulty.shard_failpoints[1] =
      "dist.barrier=crash(skip=" + std::to_string(GetParam()) + ",hits=1)";
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, faulty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->restarts, 1);
  EXPECT_EQ(result->marginals, clean->marginals);
  EXPECT_EQ(result->weights, clean->weights);
  EXPECT_EQ(result->num_accumulated, clean->num_accumulated);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, DistKillShardTest,
                         ::testing::Values(2, 8));

TEST_F(DistFaultTest, RestartBudgetExhaustionFailsTheRun) {
  DistributedOptions options = FastDistOptions();
  options.launch = DistLaunchMode::kForkedProcesses;
  options.checkpoint_dir = TempDirPath("dd_dist_budget");
  options.max_shard_restarts = 1;
  // Shard 0 dies at its first barrier, and again on every respawn: the
  // budget (1 restart) runs out and the run must fail, not spin.
  options.shard_failpoints[0] = "dist.barrier=crash(hits=1)";
  options.respawn_failpoints[0] = "dist.barrier=crash(hits=1)";
  FactorGraph graph = MakeFaultGraph();
  auto result = RunDistributed(&graph, options);
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace dd
