#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/datalog.h"
#include "query/evaluator.h"
#include "query/rule.h"
#include "storage/catalog.h"

namespace dd {
namespace {

Tuple T2(int64_t a, int64_t b) { return Tuple({Value::Int(a), Value::Int(b)}); }
Tuple T1(int64_t a) { return Tuple({Value::Int(a)}); }

Schema Int2() { return Schema({{"x", ValueType::kInt}, {"y", ValueType::kInt}}); }
Schema Int1() { return Schema({{"x", ValueType::kInt}}); }

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = *catalog_.CreateTable("R", Int2());
    s_ = *catalog_.CreateTable("S", Int2());
    q_ = *catalog_.CreateTable("Q", Int1());
  }

  std::set<Tuple> Eval(const ConjunctiveRule& rule) {
    RuleEvaluator ev(&catalog_);
    std::set<Tuple> out;
    Status st = ev.Evaluate(rule, [&](const Tuple& t) { out.insert(t); });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  Catalog catalog_;
  Table* r_;
  Table* s_;
  Table* q_;
};

ConjunctiveRule JoinRule() {
  // Q(x) :- R(x, y), S(y, z).
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.body.push_back({"S", {Term::Var("y"), Term::Var("z")}, false});
  return rule;
}

TEST_F(QueryTest, SimpleJoin) {
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 20)).ok());
  ASSERT_TRUE(r_->Insert(T2(3, 30)).ok());
  ASSERT_TRUE(s_->Insert(T2(10, 100)).ok());
  ASSERT_TRUE(s_->Insert(T2(30, 300)).ok());

  auto out = Eval(JoinRule());
  EXPECT_EQ(out, (std::set<Tuple>{T1(1), T1(3)}));
}

TEST_F(QueryTest, JoinWithConstant) {
  // Q(x) :- R(x, 10).
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 20)).ok());
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Const(Value::Int(10))}, false});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T1(1)}));
}

TEST_F(QueryTest, RepeatedVariableWithinAtom) {
  // Q(x) :- R(x, x).
  ASSERT_TRUE(r_->Insert(T2(5, 5)).ok());
  ASSERT_TRUE(r_->Insert(T2(5, 6)).ok());
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("x")}, false});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T1(5)}));
}

TEST_F(QueryTest, SelfJoin) {
  // Q(x) :- R(x, y), R(y, x).
  ASSERT_TRUE(r_->Insert(T2(1, 2)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 1)).ok());
  ASSERT_TRUE(r_->Insert(T2(3, 4)).ok());
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.body.push_back({"R", {Term::Var("y"), Term::Var("x")}, false});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T1(1), T1(2)}));
}

TEST_F(QueryTest, NegationAsAbsence) {
  // Q(x) :- R(x, y), !S(y, y).
  ASSERT_TRUE(r_->Insert(T2(1, 10)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 20)).ok());
  ASSERT_TRUE(s_->Insert(T2(10, 10)).ok());
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.body.push_back({"S", {Term::Var("y"), Term::Var("y")}, true});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T1(2)}));
}

TEST_F(QueryTest, Conditions) {
  // Q(x) :- R(x, y), x != y, y > 5.
  ASSERT_TRUE(r_->Insert(T2(1, 1)).ok());
  ASSERT_TRUE(r_->Insert(T2(2, 9)).ok());
  ASSERT_TRUE(r_->Insert(T2(3, 4)).ok());
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  rule.conditions.push_back({Term::Var("x"), CmpOp::kNe, Term::Var("y")});
  rule.conditions.push_back({Term::Var("y"), CmpOp::kGt, Term::Const(Value::Int(5))});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T1(2)}));
}

TEST_F(QueryTest, HeadConstants) {
  // Q2(x, 99) :- R(x, y).  (using S as a 2-col output table)
  ASSERT_TRUE(r_->Insert(T2(7, 8)).ok());
  ConjunctiveRule rule;
  rule.head = {"S", {Term::Var("x"), Term::Const(Value::Int(99))}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  EXPECT_EQ(Eval(rule), (std::set<Tuple>{T2(7, 99)}));
}

TEST_F(QueryTest, UnsafeRuleRejected) {
  // Q(z) :- R(x, y).  z unbound.
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("z")}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, false});
  RuleEvaluator ev(&catalog_);
  Status st = ev.Evaluate(rule, [](const Tuple&) {});
  EXPECT_FALSE(st.ok());
}

TEST_F(QueryTest, NegatedOnlyBodyRejected) {
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Const(Value::Int(1))}, false};
  rule.body.push_back({"R", {Term::Var("x"), Term::Var("y")}, true});
  EXPECT_FALSE(rule.Validate().ok());
}

TEST_F(QueryTest, MissingTableIsError) {
  ConjunctiveRule rule;
  rule.head = {"Q", {Term::Var("x")}, false};
  rule.body.push_back({"ZZZ", {Term::Var("x")}, false});
  RuleEvaluator ev(&catalog_);
  Status st = ev.Evaluate(rule, [](const Tuple&) {});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(DatalogTest, TransitiveClosure) {
  Catalog catalog;
  Table* edge = *catalog.CreateTable("Edge", Int2());
  ASSERT_TRUE(catalog.CreateTable("Path", Int2()).ok());
  ASSERT_TRUE(edge->Insert(T2(1, 2)).ok());
  ASSERT_TRUE(edge->Insert(T2(2, 3)).ok());
  ASSERT_TRUE(edge->Insert(T2(3, 4)).ok());

  std::vector<ConjunctiveRule> rules(2);
  rules[0].head = {"Path", {Term::Var("x"), Term::Var("y")}, false};
  rules[0].body.push_back({"Edge", {Term::Var("x"), Term::Var("y")}, false});
  rules[1].head = {"Path", {Term::Var("x"), Term::Var("z")}, false};
  rules[1].body.push_back({"Path", {Term::Var("x"), Term::Var("y")}, false});
  rules[1].body.push_back({"Edge", {Term::Var("y"), Term::Var("z")}, false});

  DatalogEngine engine(&catalog);
  ASSERT_TRUE(engine.Evaluate(rules).ok());
  Table* path = *catalog.GetTable("Path");
  EXPECT_EQ(path->size(), 6u);  // 1->2,1->3,1->4,2->3,2->4,3->4
  EXPECT_TRUE(path->Contains(T2(1, 4)));
  EXPECT_FALSE(path->Contains(T2(4, 1)));
}

TEST(DatalogTest, StratifiedNegation) {
  Catalog catalog;
  Table* node = *catalog.CreateTable("Node", Int1());
  Table* edge = *catalog.CreateTable("Edge", Int2());
  ASSERT_TRUE(catalog.CreateTable("Reach", Int1()).ok());
  ASSERT_TRUE(catalog.CreateTable("Unreach", Int1()).ok());
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(node->Insert(T1(i)).ok());
  ASSERT_TRUE(edge->Insert(T2(1, 2)).ok());
  ASSERT_TRUE(edge->Insert(T2(2, 3)).ok());

  std::vector<ConjunctiveRule> rules(3);
  // Reach(1). encoded as Reach(x) :- Node(x), x = 1.
  rules[0].head = {"Reach", {Term::Var("x")}, false};
  rules[0].body.push_back({"Node", {Term::Var("x")}, false});
  rules[0].conditions.push_back({Term::Var("x"), CmpOp::kEq, Term::Const(Value::Int(1))});
  rules[1].head = {"Reach", {Term::Var("y")}, false};
  rules[1].body.push_back({"Reach", {Term::Var("x")}, false});
  rules[1].body.push_back({"Edge", {Term::Var("x"), Term::Var("y")}, false});
  rules[2].head = {"Unreach", {Term::Var("x")}, false};
  rules[2].body.push_back({"Node", {Term::Var("x")}, false});
  rules[2].body.push_back({"Reach", {Term::Var("x")}, true});

  DatalogEngine engine(&catalog);
  ASSERT_TRUE(engine.Evaluate(rules).ok());
  EXPECT_EQ((*catalog.GetTable("Reach"))->size(), 3u);    // 1,2,3
  EXPECT_EQ((*catalog.GetTable("Unreach"))->size(), 2u);  // 4,5
}

TEST(DatalogTest, NegationThroughRecursionRejected) {
  // P(x) :- Node(x), !P(x). — not stratifiable.
  std::vector<ConjunctiveRule> rules(1);
  rules[0].head = {"P", {Term::Var("x")}, false};
  rules[0].body.push_back({"Node", {Term::Var("x")}, false});
  rules[0].body.push_back({"P", {Term::Var("x")}, true});
  auto strat = Stratify(rules);
  EXPECT_FALSE(strat.ok());
}

TEST(DatalogTest, StratifyOrdersDependenciesFirst) {
  // B :- A.  C :- B.  A is base.
  std::vector<ConjunctiveRule> rules(2);
  rules[0].head = {"C", {Term::Var("x")}, false};
  rules[0].body.push_back({"B", {Term::Var("x")}, false});
  rules[1].head = {"B", {Term::Var("x")}, false};
  rules[1].body.push_back({"A", {Term::Var("x")}, false});
  auto strat = Stratify(rules);
  ASSERT_TRUE(strat.ok());
  ASSERT_EQ(strat->strata.size(), 2u);
  EXPECT_EQ(strat->strata[0][0], "B");
  EXPECT_EQ(strat->strata[1][0], "C");
  EXPECT_FALSE(strat->has_recursion);
}

TEST(ConditionTest, AllOperators) {
  Value a = Value::Int(1), b = Value::Int(2);
  EXPECT_TRUE(EvalCondition(a, CmpOp::kLt, b));
  EXPECT_TRUE(EvalCondition(a, CmpOp::kLe, b));
  EXPECT_TRUE(EvalCondition(a, CmpOp::kLe, a));
  EXPECT_TRUE(EvalCondition(b, CmpOp::kGt, a));
  EXPECT_TRUE(EvalCondition(b, CmpOp::kGe, b));
  EXPECT_TRUE(EvalCondition(a, CmpOp::kNe, b));
  EXPECT_TRUE(EvalCondition(a, CmpOp::kEq, a));
  EXPECT_FALSE(EvalCondition(a, CmpOp::kEq, b));
}

}  // namespace
}  // namespace dd
