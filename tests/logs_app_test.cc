// Quality gates for the log/telemetry KBC workload: the pipeline must
// recover the planted causal service pairs from the raw byte stream,
// suppress KB-known-independent pairs, and degrade gracefully on
// corrupted lines.

#include <gtest/gtest.h>

#include <string>

#include "testdata/corpus_logs.h"
#include "testdata/logs_app.h"

namespace dd {
namespace {

PipelineOptions FastOptions() {
  PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.strategy = PipelineOptions::Strategy::kSampling;
  options.threshold = 0.8;
  return options;
}

TEST(LogsCorpusTest, GeneratorPlantsStructure) {
  LogsCorpus corpus = GenerateLogsCorpus(LogsCorpusOptions());
  EXPECT_GE(corpus.lines.size(), 200u);
  EXPECT_EQ(corpus.causal_pairs.size(), 3u);
  EXPECT_FALSE(corpus.kb_causes.empty());
  EXPECT_FALSE(corpus.kb_not_causes.empty());
  // Deterministic: same seed, same bytes.
  LogsCorpus again = GenerateLogsCorpus(LogsCorpusOptions());
  EXPECT_EQ(corpus.text, again.text);
  // Every line round-trips through the wire format.
  size_t errors = 0;
  for (const LogLine& line : corpus.lines) {
    if (line.level == "ERROR") ++errors;
  }
  EXPECT_GT(errors, 50u);  // enough signal to learn from
}

TEST(LogsAppTest, RecoversPlantedCausalPairs) {
  LogsCorpusOptions corpus_options;
  corpus_options.seed = 31;
  LogsCorpus corpus = GenerateLogsCorpus(corpus_options);

  StreamOptions stream_options;
  stream_options.chunk_bytes = 4096;
  stream_options.num_workers = 4;
  IngestStats stats;
  auto pipeline =
      MakeLogsPipeline(corpus, FastOptions(), stream_options, &stats);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(stats.records, corpus.lines.size());
  EXPECT_EQ(stats.bytes_in, corpus.text.size());
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto extracted = ExtractedCauses(**pipeline, 0.8);
  // Recall: the cascades fire often enough that the planted pairs
  // dominate their windows.
  size_t recovered = 0;
  for (const auto& pair : corpus.causal_pairs) {
    if (extracted.count(pair) > 0) ++recovered;
  }
  EXPECT_GE(recovered, 2u) << "of " << corpus.causal_pairs.size();
  // Precision: extractions should be dominated by planted pairs (their
  // reverses co-occur just as often, so allow them — direction comes
  // only from the code feature, a weak signal).
  size_t spurious = 0;
  for (const auto& [a, b] : extracted) {
    bool planted = false;
    for (const auto& [u, d] : corpus.causal_pairs) {
      if ((a == u && b == d) || (a == d && b == u)) planted = true;
    }
    if (!planted) ++spurious;
  }
  EXPECT_LE(spurious, extracted.size() / 2)
      << "extracted=" << extracted.size();
}

TEST(LogsAppTest, KbNegativePairsAreSuppressed) {
  LogsCorpusOptions corpus_options;
  corpus_options.seed = 32;
  LogsCorpus corpus = GenerateLogsCorpus(corpus_options);

  StreamOptions stream_options;
  auto pipeline = MakeLogsPipeline(corpus, FastOptions(), stream_options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto extracted = ExtractedCauses(**pipeline, 0.8);
  for (const auto& pair : corpus.kb_not_causes) {
    EXPECT_EQ(extracted.count(pair), 0u)
        << pair.first << " -> " << pair.second;
  }
}

TEST(LogsAppTest, CoOccursIsSymmetricSuperset) {
  LogsCorpusOptions corpus_options;
  corpus_options.seed = 33;
  corpus_options.num_windows = 40;
  LogsCorpus corpus = GenerateLogsCorpus(corpus_options);

  auto pipeline = MakeLogsPipeline(corpus, FastOptions(), StreamOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto causes = ExtractedCauses(**pipeline, 0.8);
  auto cooccurs = (*pipeline)->Extractions("CoOccurs");
  ASSERT_TRUE(cooccurs.ok());
  std::set<std::pair<std::string, std::string>> co;
  for (const Tuple& t : *cooccurs) {
    co.emplace(t.at(0).AsString(), t.at(1).AsString());
  }
  // The candidate mapping is symmetric and causation implies
  // co-occurrence, so confident causal pairs must co-occur.
  for (const auto& pair : causes) {
    EXPECT_EQ(co.count(pair), 1u) << pair.first << " -> " << pair.second;
  }
}

TEST(LogsAppTest, CorruptLinesQuarantinedNotFatal) {
  LogsCorpusOptions corpus_options;
  corpus_options.seed = 34;
  corpus_options.num_windows = 30;
  LogsCorpus corpus = GenerateLogsCorpus(corpus_options);
  // Garble the stream: drop malformed lines between real ones.
  std::string corrupted;
  size_t garbage = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start < corpus.text.size()) {
    size_t end = corpus.text.find('\n', start);
    if (end == std::string::npos) end = corpus.text.size();
    corrupted.append(corpus.text, start, end - start + 1);
    if (++line_no % 10 == 0) {
      corrupted += "%% corrupted frame 0xdeadbeef\n";
      ++garbage;
    }
    start = end + 1;
  }

  LogsCorpus dirty = corpus;
  dirty.text = corrupted;
  IngestStats stats;
  auto pipeline =
      MakeLogsPipeline(dirty, FastOptions(), StreamOptions(), &stats);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  EXPECT_EQ(stats.records_quarantined, garbage);
  EXPECT_EQ(stats.records, corpus.lines.size() + garbage);
  ASSERT_TRUE((*pipeline)->Run().ok());
  // The KBC output still recovers structure from the clean majority.
  auto extracted = ExtractedCauses(**pipeline, 0.8);
  EXPECT_FALSE(extracted.empty());
}

}  // namespace
}  // namespace dd
