#include <gtest/gtest.h>

#include <set>

#include "testdata/corpus_ads.h"
#include "testdata/corpus_genomics.h"
#include "testdata/corpus_spouse.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

TEST(SpouseCorpusTest, ShapeAndDeterminism) {
  SpouseCorpusOptions options;
  options.num_documents = 50;
  options.seed = 5;
  SpouseCorpus a = GenerateSpouseCorpus(options);
  SpouseCorpus b = GenerateSpouseCorpus(options);
  EXPECT_EQ(a.documents.size(), 50u);
  EXPECT_EQ(a.married_truth.size(),
            static_cast<size_t>(options.num_married_pairs));
  ASSERT_EQ(a.documents.size(), b.documents.size());
  for (size_t i = 0; i < a.documents.size(); ++i) {
    EXPECT_EQ(a.documents[i].second, b.documents[i].second);
  }
  // KB is a subset of the truth.
  std::set<std::pair<std::string, std::string>> truth(a.married_truth.begin(),
                                                      a.married_truth.end());
  for (const auto& pair : a.kb_married) EXPECT_TRUE(truth.count(pair) > 0);
  EXPECT_LE(a.kb_married.size(), a.married_truth.size());
}

TEST(SpouseCorpusTest, PairsAreOrderedAndDisjoint) {
  SpouseCorpus corpus = GenerateSpouseCorpus(SpouseCorpusOptions());
  std::set<std::string> married_members;
  for (const auto& [x, y] : corpus.married_truth) {
    EXPECT_LT(x, y);  // canonical order
    married_members.insert(x);
    married_members.insert(y);
  }
  for (const auto& [x, y] : corpus.kb_siblings) {
    // Siblings are disjoint from married pairs (a person is in only one).
    EXPECT_EQ(married_members.count(x), 0u);
    EXPECT_EQ(married_members.count(y), 0u);
  }
}

TEST(SpouseCorpusTest, CorruptionChangesText) {
  SpouseCorpusOptions clean_options;
  clean_options.seed = 6;
  SpouseCorpusOptions noisy_options = clean_options;
  noisy_options.corruption = 1.0;
  SpouseCorpus clean = GenerateSpouseCorpus(clean_options);
  SpouseCorpus noisy = GenerateSpouseCorpus(noisy_options);
  size_t differing = 0;
  for (size_t i = 0; i < clean.documents.size(); ++i) {
    if (clean.documents[i].second != noisy.documents[i].second) ++differing;
  }
  EXPECT_GT(differing, clean.documents.size() / 2);
}

TEST(GenomicsCorpusTest, ShapeAndDictionaries) {
  GenomicsCorpusOptions options;
  options.seed = 7;
  GenomicsCorpus corpus = GenerateGenomicsCorpus(options);
  EXPECT_EQ(corpus.documents.size(), static_cast<size_t>(options.num_abstracts));
  EXPECT_FALSE(corpus.genes.empty());
  EXPECT_FALSE(corpus.phenotypes.empty());
  EXPECT_FALSE(corpus.association_truth.empty());
  EXPECT_LE(corpus.kb_associations.size(), corpus.association_truth.size());
  // Phenotypes are two-word phrases (gazetteer exercises multi-token).
  for (const std::string& p : corpus.phenotypes) {
    EXPECT_NE(p.find(' '), std::string::npos);
  }
}

TEST(AdsCorpusTest, ShapeAndTruth) {
  AdsCorpusOptions options;
  options.num_ads = 100;
  options.seed = 8;
  AdsCorpus corpus = GenerateAdsCorpus(options);
  EXPECT_EQ(corpus.ads.size(), 100u);
  for (const Ad& ad : corpus.ads) {
    EXPECT_FALSE(ad.text.empty());
    EXPECT_GT(ad.price, 0);
    // The planted truth values appear in the ad text.
    EXPECT_NE(ad.text.find(ad.city), std::string::npos);
    EXPECT_NE(ad.text.find(ad.worker), std::string::npos);
    EXPECT_NE(ad.text.find(std::to_string(ad.price)), std::string::npos);
  }
}

TEST(AdsCorpusTest, MultiCityWorkersExist) {
  AdsCorpusOptions options;
  options.num_workers = 50;
  options.multi_city_fraction = 0.5;
  options.seed = 9;
  AdsCorpus corpus = GenerateAdsCorpus(options);
  EXPECT_GT(corpus.multi_city_workers.size(), 10u);
}

TEST(SyntheticGraphsTest, RandomGraphShape) {
  SyntheticGraphOptions options;
  options.num_variables = 500;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.2;
  FactorGraph graph = MakeRandomGraph(options);
  EXPECT_EQ(graph.num_variables(), 500u);
  EXPECT_EQ(graph.num_factors(), 1000u);
  EXPECT_TRUE(graph.finalized());
  size_t evidence = 0;
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    evidence += graph.is_evidence(v);
  }
  EXPECT_NEAR(static_cast<double>(evidence) / 500.0, 0.2, 0.08);
}

TEST(SyntheticGraphsTest, ChainGraph) {
  FactorGraph graph = MakeChainGraph(50, 1.5, 1);
  EXPECT_EQ(graph.num_variables(), 50u);
  EXPECT_TRUE(graph.finalized());
  // 49 imply factors + ceil(50/7)=8 priors.
  EXPECT_EQ(graph.num_factors(), 49u + 8u);
}

TEST(SyntheticGraphsTest, ClassificationGraphAllEvidence) {
  FactorGraph graph = MakeClassificationGraph(200, 30, 5, 2);
  EXPECT_EQ(graph.num_variables(), 200u);
  EXPECT_EQ(graph.num_weights(), 30u);
  EXPECT_EQ(graph.num_factors(), 1000u);
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    EXPECT_TRUE(graph.is_evidence(v));
  }
}

}  // namespace
}  // namespace dd
