// Property tests for the greedy min-cut partitioner (dist/partition.h):
// exact-once ownership, factor-follows-first-literal, a complete
// boundary catalog, a cut no worse than the seeded random baseline,
// balance, determinism per seed, and the shard-subgraph invariants
// BuildShardGraph promises the shard workers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "dist/partition.h"
#include "factor/graph.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

FactorGraph MakeGraph(size_t num_variables, uint64_t seed) {
  SyntheticGraphOptions options;
  options.num_variables = num_variables;
  options.factors_per_variable = 3.0;
  options.evidence_fraction = 0.15;
  options.num_weights = 24;
  options.seed = seed;
  FactorGraph graph = MakeRandomGraph(options);
  EXPECT_TRUE(graph.Finalize().ok());
  return graph;
}

// Recompute every property of the partition from the graph alone and
// compare against what PartitionGraph reported.
void CheckPartition(const FactorGraph& graph, const GraphPartition& p,
                    const PartitionOptions& options) {
  const size_t nv = graph.num_variables();
  const size_t nf = graph.num_factors();
  const int shards = options.num_shards;
  ASSERT_EQ(p.num_shards, shards);
  ASSERT_EQ(p.var_shard.size(), nv);
  ASSERT_EQ(p.factor_shard.size(), nf);
  ASSERT_EQ(p.shard_vars.size(), static_cast<size_t>(shards));
  ASSERT_EQ(p.shard_factors.size(), static_cast<size_t>(shards));
  ASSERT_EQ(p.shard_ghosts.size(), static_cast<size_t>(shards));

  // Every variable owned exactly once; shard_vars ascending and
  // consistent with var_shard.
  std::vector<uint32_t> seen;
  for (int s = 0; s < shards; ++s) {
    EXPECT_FALSE(p.shard_vars[s].empty()) << "empty shard " << s;
    EXPECT_TRUE(std::is_sorted(p.shard_vars[s].begin(), p.shard_vars[s].end()));
    for (uint32_t v : p.shard_vars[s]) {
      ASSERT_LT(v, nv);
      EXPECT_EQ(p.var_shard[v], static_cast<uint32_t>(s));
      seen.push_back(v);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), nv) << "variables assigned more or less than once";
  for (size_t v = 0; v < nv; ++v) EXPECT_EQ(seen[v], v);

  // Balance: refinement never grows a shard past the slack cap.
  const size_t cap = static_cast<size_t>(
      (nv + shards - 1) / shards * (1.0 + options.balance_slack) + 1);
  for (int s = 0; s < shards; ++s) EXPECT_LE(p.shard_vars[s].size(), cap);

  // Factor ownership is a pure function of variable ownership: the
  // shard of the first literal's variable.
  std::vector<uint32_t> factors_seen;
  for (int s = 0; s < shards; ++s) {
    EXPECT_TRUE(
        std::is_sorted(p.shard_factors[s].begin(), p.shard_factors[s].end()));
    for (uint32_t f : p.shard_factors[s]) factors_seen.push_back(f);
  }
  std::sort(factors_seen.begin(), factors_seen.end());
  ASSERT_EQ(factors_seen.size(), nf);
  for (uint32_t f = 0; f < nf; ++f) {
    EXPECT_EQ(factors_seen[f], f);
    size_t count = 0;
    const Literal* lits = graph.factor_literals(f, &count);
    ASSERT_GT(count, 0u);
    EXPECT_EQ(p.factor_shard[f], p.var_shard[lits[0].var]) << "factor " << f;
  }

  // Recompute the cut and the boundary catalog by scanning every
  // (factor, literal) edge. Replication semantics: a cut factor lives
  // on every shard owning one of its variables, so each of its
  // variables is ghosted on every other incident shard.
  uint64_t cut = 0;
  std::map<uint32_t, std::set<uint32_t>> readers;  // var -> ghost hosts
  for (uint32_t f = 0; f < nf; ++f) {
    size_t count = 0;
    const Literal* lits = graph.factor_literals(f, &count);
    std::set<uint32_t> incident;
    for (size_t i = 0; i < count; ++i) {
      incident.insert(p.var_shard[lits[i].var]);
      if (p.var_shard[lits[i].var] != p.factor_shard[f]) ++cut;
    }
    if (incident.size() <= 1) continue;  // fully internal factor
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = lits[i].var;
      for (uint32_t s : incident) {
        if (s != p.var_shard[v]) readers[v].insert(s);
      }
    }
  }
  EXPECT_EQ(p.cut_edges, cut);
  EXPECT_LE(p.cut_edges, p.initial_cut_edges)
      << "greedy refinement made the cut worse than the random baseline";

  // Catalog completeness: exactly the recomputed boundary, ascending,
  // with exactly the recomputed reader sets.
  ASSERT_EQ(p.boundary.size(), readers.size());
  size_t i = 0;
  for (const auto& [v, shard_set] : readers) {
    const BoundaryVar& entry = p.boundary[i++];
    EXPECT_EQ(entry.var, v);
    EXPECT_EQ(entry.owner, p.var_shard[v]);
    std::vector<uint32_t> want(shard_set.begin(), shard_set.end());
    EXPECT_EQ(entry.readers, want) << "boundary variable " << v;
  }

  // Ghost lists mirror the catalog: shard s hosts exactly the boundary
  // variables it reads, ascending.
  std::vector<std::vector<uint32_t>> want_ghosts(shards);
  for (const auto& [v, shard_set] : readers) {
    for (uint32_t s : shard_set) want_ghosts[s].push_back(v);
  }
  for (int s = 0; s < shards; ++s) {
    EXPECT_EQ(p.shard_ghosts[s], want_ghosts[s]) << "shard " << s;
  }
}

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PartitionPropertyTest, InvariantsHold) {
  const int shards = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  FactorGraph graph = MakeGraph(300, seed);
  PartitionOptions options;
  options.num_shards = shards;
  options.seed = seed * 0x9e3779b9ull + 1;

  auto partition = PartitionGraph(graph, options);
  ASSERT_TRUE(partition.ok()) << partition.status().ToString();
  CheckPartition(graph, *partition, options);

  // Determinism: same graph + options, same partition, bit for bit.
  auto again = PartitionGraph(graph, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(partition->var_shard, again->var_shard);
  EXPECT_EQ(partition->cut_edges, again->cut_edges);
  EXPECT_EQ(partition->initial_cut_edges, again->initial_cut_edges);

  // A different seed is allowed to produce a different partition, but
  // must satisfy the same invariants.
  PartitionOptions other = options;
  other.seed ^= 0x5bd1e995;
  auto reseeded = PartitionGraph(graph, other);
  ASSERT_TRUE(reseeded.ok());
  CheckPartition(graph, *reseeded, other);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsBySeeds, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(1u, 2u, 3u)));

TEST(PartitionTest, SingleShardHasNoCut) {
  FactorGraph graph = MakeGraph(100, 9);
  PartitionOptions options;
  options.num_shards = 1;
  auto partition = PartitionGraph(graph, options);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->cut_edges, 0u);
  EXPECT_EQ(partition->initial_cut_edges, 0u);
  EXPECT_TRUE(partition->boundary.empty());
  CheckPartition(graph, *partition, options);
}

// ---- Shard subgraphs ---------------------------------------------------

TEST(PartitionTest, ShardGraphInvariants) {
  FactorGraph graph = MakeGraph(200, 29);
  PartitionOptions options;
  options.num_shards = 3;
  auto partition = PartitionGraph(graph, options);
  ASSERT_TRUE(partition.ok());

  size_t total_owned = 0;
  size_t total_factors = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    auto shard = BuildShardGraph(graph, *partition, s);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    EXPECT_EQ(shard->shard, s);
    EXPECT_EQ(shard->num_shards, 3u);

    // Local ids: owned variables ascending, then ghosts ascending.
    ASSERT_EQ(shard->num_owned, partition->shard_vars[s].size());
    ASSERT_EQ(shard->local_to_global.size(),
              shard->num_owned + partition->shard_ghosts[s].size());
    for (size_t i = 0; i < shard->num_owned; ++i) {
      EXPECT_EQ(shard->local_to_global[i], partition->shard_vars[s][i]);
    }
    for (size_t i = 0; i < partition->shard_ghosts[s].size(); ++i) {
      EXPECT_EQ(shard->local_to_global[shard->num_owned + i],
                partition->shard_ghosts[s][i]);
    }
    EXPECT_EQ(shard->graph.num_variables(), shard->local_to_global.size());

    // Ghosts are pinned as evidence; owned variables keep the global
    // graph's evidence marking.
    for (size_t i = 0; i < shard->local_to_global.size(); ++i) {
      const uint32_t global = shard->local_to_global[i];
      if (i < shard->num_owned) {
        EXPECT_EQ(shard->graph.is_evidence(i), graph.is_evidence(global));
        if (graph.is_evidence(global)) {
          EXPECT_EQ(shard->graph.evidence_value(i),
                    graph.evidence_value(global));
        }
      } else {
        EXPECT_TRUE(shard->graph.is_evidence(i)) << "unpinned ghost " << global;
      }
    }

    // owned_boundary: exactly the owned variables some other shard
    // reads, as local ids, ascending.
    std::vector<uint32_t> want;
    for (const BoundaryVar& b : partition->boundary) {
      if (b.owner != s) continue;
      const auto& vars = partition->shard_vars[s];
      const auto it = std::lower_bound(vars.begin(), vars.end(), b.var);
      ASSERT_TRUE(it != vars.end() && *it == b.var);
      want.push_back(static_cast<uint32_t>(it - vars.begin()));
    }
    EXPECT_EQ(shard->owned_boundary, want);

    // Weight space replicated with global ids (tying spans shards).
    ASSERT_EQ(shard->graph.num_weights(), graph.num_weights());
    for (uint32_t w = 0; w < graph.num_weights(); ++w) {
      EXPECT_EQ(shard->graph.weight_value(w), graph.weight_value(w));
      EXPECT_EQ(shard->graph.weight(w).is_fixed, graph.weight(w).is_fixed);
    }

    // Factor layout: owned factors (the gradient domain) first, then
    // replicas of cut factors owned elsewhere. A replica is locally
    // recognizable by its first literal being a ghost; an owned factor's
    // first literal is an owned variable by construction.
    ASSERT_EQ(shard->num_owned_factors, partition->shard_factors[s].size());
    size_t want_replicas = 0;
    for (uint32_t f = 0; f < graph.num_factors(); ++f) {
      if (partition->factor_shard[f] == s) continue;
      size_t count = 0;
      const Literal* lits = graph.factor_literals(f, &count);
      for (size_t i = 0; i < count; ++i) {
        if (partition->var_shard[lits[i].var] == s) {
          ++want_replicas;
          break;
        }
      }
    }
    ASSERT_EQ(shard->graph.num_factors(),
              shard->num_owned_factors + want_replicas);
    for (uint32_t f = 0; f < shard->graph.num_factors(); ++f) {
      size_t count = 0;
      const Literal* lits = shard->graph.factor_literals(f, &count);
      ASSERT_GT(count, 0u);
      if (f < shard->num_owned_factors) {
        EXPECT_LT(lits[0].var, shard->num_owned) << "owned factor " << f;
      } else {
        EXPECT_GE(lits[0].var, shard->num_owned) << "replica factor " << f;
      }
    }

    total_owned += shard->num_owned;
    total_factors += shard->num_owned_factors;
  }
  EXPECT_EQ(total_owned, graph.num_variables());
  // Exact-once gradient ownership: owned-factor regions tile the graph.
  EXPECT_EQ(total_factors, graph.num_factors());
}

}  // namespace
}  // namespace dd
