#include <gtest/gtest.h>

#include <algorithm>

#include "core/features.h"
#include "core/udf.h"
#include "nlp/document.h"

namespace dd {
namespace {

/// Sentence: "Barack Obama and his wife Michelle Obama smiled"
///            0      1     2   3   4    5        6     7
struct Fixture {
  Fixture() {
    doc = AnnotateDocument("d", "Barack Obama and his wife Michelle Obama smiled");
    m1 = Mention{0, 0, 2, "PERSON", "Barack Obama"};
    m2 = Mention{0, 5, 7, "PERSON", "Michelle Obama"};
  }
  Document doc;
  Mention m1, m2;
  const Sentence& sentence() const { return doc.sentences[0]; }
};

TEST(FeaturesTest, PhraseBetween) {
  Fixture f;
  EXPECT_EQ(PhraseBetween(f.sentence(), f.m1, f.m2), "and his wife");
  // Order-insensitive.
  EXPECT_EQ(PhraseBetween(f.sentence(), f.m2, f.m1), "and his wife");
}

TEST(FeaturesTest, PhraseBetweenAdjacent) {
  Document doc = AnnotateDocument("d", "Barack Obama Michelle Obama");
  Mention a{0, 0, 2, "PERSON", "Barack Obama"};
  Mention b{0, 2, 4, "PERSON", "Michelle Obama"};
  EXPECT_EQ(PhraseBetween(doc.sentences[0], a, b), "");
}

TEST(FeaturesTest, PhraseBetweenOverlapping) {
  Fixture f;
  Mention overlap{0, 1, 3, "PERSON", "Obama and"};
  // Overlapping mentions: empty gap, no crash.
  EXPECT_EQ(PhraseBetween(f.sentence(), f.m1, overlap), "");
}

TEST(FeaturesTest, BagOfWordsBetween) {
  Fixture f;
  auto bow = BagOfWordsBetween(f.sentence(), f.m1, f.m2);
  ASSERT_EQ(bow.size(), 3u);
  EXPECT_EQ(bow[0], "word=and");
  EXPECT_EQ(bow[1], "word=his");
  EXPECT_EQ(bow[2], "word=wife");
}

TEST(FeaturesTest, WindowFeatures) {
  Fixture f;
  auto window = WindowFeatures(f.sentence(), f.m2, 2);
  // left1=wife left2=his right1=smiled (no right2: end of sentence).
  EXPECT_EQ(window.size(), 3u);
  EXPECT_NE(std::find(window.begin(), window.end(), "left1=wife"), window.end());
  EXPECT_NE(std::find(window.begin(), window.end(), "left2=his"), window.end());
  EXPECT_NE(std::find(window.begin(), window.end(), "right1=smiled"), window.end());
}

TEST(FeaturesTest, WindowAtSentenceStart) {
  Fixture f;
  auto window = WindowFeatures(f.sentence(), f.m1, 2);
  // No left tokens; right1=and right2=his.
  EXPECT_EQ(window.size(), 2u);
}

TEST(FeaturesTest, PosSequence) {
  Fixture f;
  std::string pos = PosSequenceBetween(f.sentence(), f.m1, f.m2);
  EXPECT_EQ(pos, "pos_between=CC PRP$ NN");
}

TEST(FeaturesTest, DistanceBuckets) {
  Mention a{0, 0, 1, "X", "a"};
  auto at = [](int begin, int end) { return Mention{0, begin, end, "X", "b"}; };
  EXPECT_EQ(DistanceFeature(a, at(1, 2)), "dist=adjacent");
  EXPECT_EQ(DistanceFeature(a, at(3, 4)), "dist=short");
  EXPECT_EQ(DistanceFeature(a, at(6, 7)), "dist=medium");
  EXPECT_EQ(DistanceFeature(a, at(15, 16)), "dist=long");
  // Symmetric.
  EXPECT_EQ(DistanceFeature(at(15, 16), a), "dist=long");
}

TEST(FeaturesTest, TemplatesDeduplicatedAndSorted) {
  Fixture f;
  auto features = RelationFeatureTemplates(f.sentence(), f.m1, f.m2);
  EXPECT_FALSE(features.empty());
  EXPECT_TRUE(std::is_sorted(features.begin(), features.end()));
  EXPECT_EQ(std::adjacent_find(features.begin(), features.end()), features.end());
  // Contains the phrase feature.
  EXPECT_NE(std::find(features.begin(), features.end(), "phrase=and his wife"),
            features.end());
}

TEST(UdfTest, Builtins) {
  UdfRegistry registry;
  EXPECT_TRUE(registry.Has("identity"));
  auto id = registry.Call("identity", {Value::Int(5)});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, Value::Int(5));

  auto lower = registry.Call("lower", {Value::String("ABC")});
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ(lower->AsString(), "abc");

  auto concat = registry.Call("concat", {Value::Int(1), Value::String("x")});
  ASSERT_TRUE(concat.ok());
  EXPECT_EQ(concat->AsString(), "1|\"x\"");

  auto bucket = registry.Call("bucket", {Value::Double(1234.0)});
  ASSERT_TRUE(bucket.ok());
  EXPECT_EQ(bucket->AsString(), "1e3");
  auto nonpos = registry.Call("bucket", {Value::Int(-3)});
  ASSERT_TRUE(nonpos.ok());
  EXPECT_EQ(nonpos->AsString(), "nonpositive");
}

TEST(UdfTest, ErrorsAndRegistration) {
  UdfRegistry registry;
  EXPECT_EQ(registry.Call("missing", {}).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(registry.Call("identity", {}).ok());  // wrong arity
  EXPECT_FALSE(registry.Call("lower", {Value::Int(1)}).ok());  // wrong type

  registry.Register("twice", [](const std::vector<Value>& args) -> Result<Value> {
    return Value::Int(args[0].AsInt() * 2);
  });
  auto result = registry.Call("twice", {Value::Int(21)});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->AsInt(), 42);
}

}  // namespace
}  // namespace dd
