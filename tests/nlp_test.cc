#include <gtest/gtest.h>

#include "nlp/document.h"
#include "nlp/html.h"
#include "nlp/ner.h"
#include "nlp/pos.h"
#include "nlp/tokenizer.h"

namespace dd {
namespace {

TEST(HtmlTest, StripsTagsAndEntities) {
  EXPECT_EQ(StripHtml("<b>bold</b> text"), "bold text");
  EXPECT_EQ(StripHtml("a &amp; b &lt;c&gt;"), "a & b <c>");
  EXPECT_EQ(StripHtml("x&nbsp;y"), "x y");
}

TEST(HtmlTest, BlockTagsBecomeNewlines) {
  std::string out = StripHtml("<p>one</p><p>two</p>");
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("one"), std::string::npos);
  EXPECT_NE(out.find("two"), std::string::npos);
}

TEST(HtmlTest, DropsScriptAndStyleBodies) {
  EXPECT_EQ(StripHtml("a<script>var x = 1;</script>b"), "ab");
  EXPECT_EQ(StripHtml("a<style>.c { color: red }</style>b"), "ab");
}

TEST(HtmlTest, MalformedMarkupNeverCrashes) {
  EXPECT_EQ(StripHtml("text with < stray bracket"), "text with ");
  EXPECT_EQ(StripHtml("<unclosed"), "");
  EXPECT_EQ(StripHtml("<script>never closed"), "");
  EXPECT_EQ(StripHtml(""), "");
}

TEST(TokenizerTest, BasicWordsAndPunctuation) {
  auto tokens = Tokenize("Hello, world!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "Hello");
  EXPECT_EQ(tokens[1].text, ",");
  EXPECT_EQ(tokens[2].text, "world");
  EXPECT_EQ(tokens[3].text, "!");
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string text = "ab  cd";
  auto tokens = Tokenize(text);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(text.substr(tokens[0].begin, tokens[0].end - tokens[0].begin), "ab");
  EXPECT_EQ(text.substr(tokens[1].begin, tokens[1].end - tokens[1].begin), "cd");
}

TEST(TokenizerTest, DecimalsAndThousandsStayWhole) {
  auto tokens = Tokenize("price is 1,200.50 today");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].text, "1,200.50");
}

TEST(TokenizerTest, AbbreviationsKeepDots) {
  auto tokens = Tokenize("the U.S.A team");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "U.S.A");
}

TEST(TokenizerTest, CurrencySymbolSplits) {
  auto tokens = Tokenize("$120");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "$");
  EXPECT_EQ(tokens[1].text, "120");
}

TEST(SentenceSplitTest, SplitsOnTerminators) {
  auto ranges = SplitSentences("First sentence. Second one! Third?");
  EXPECT_EQ(ranges.size(), 3u);
}

TEST(SentenceSplitTest, AbbreviationsDoNotSplit) {
  auto ranges = SplitSentences("Dr. Smith met Mr. Jones. They spoke.");
  EXPECT_EQ(ranges.size(), 2u);
}

TEST(SentenceSplitTest, InitialsDoNotSplit) {
  auto ranges = SplitSentences("B. Obama and Michelle were married Oct. 3, 1992.");
  EXPECT_EQ(ranges.size(), 1u);
}

TEST(SentenceSplitTest, BlankLineSplits) {
  auto ranges = SplitSentences("para one\n\npara two");
  EXPECT_EQ(ranges.size(), 2u);
}

TEST(SentenceSplitTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   \n  ").empty());
}

TEST(PosTest, ClosedClassWords) {
  auto tokens = Tokenize("the cat sat on a mat");
  TagPos(&tokens);
  EXPECT_EQ(tokens[0].pos, "DT");
  EXPECT_EQ(tokens[3].pos, "IN");
  EXPECT_EQ(tokens[4].pos, "DT");
}

TEST(PosTest, OpenClassHeuristics) {
  auto tokens = Tokenize("Barack quickly walking walked 42 beautiful");
  TagPos(&tokens);
  EXPECT_EQ(tokens[0].pos, "NNP");  // capitalized
  EXPECT_EQ(tokens[1].pos, "RB");   // -ly
  EXPECT_EQ(tokens[2].pos, "VBG");  // -ing
  EXPECT_EQ(tokens[3].pos, "VBD");  // -ed
  EXPECT_EQ(tokens[4].pos, "CD");   // digits
  EXPECT_EQ(tokens[5].pos, "JJ");   // -ful
}

TEST(PosTest, PunctuationTagsAreThemselves) {
  auto tokens = Tokenize("yes , no .");
  TagPos(&tokens);
  EXPECT_EQ(tokens[1].pos, ",");
  EXPECT_EQ(tokens[3].pos, ".");
}

TEST(DocumentTest, FullPipeline) {
  Document doc = AnnotateDocument("d1", "B. Obama and Michelle were married. They live.");
  EXPECT_EQ(doc.id, "d1");
  ASSERT_EQ(doc.sentences.size(), 2u);
  EXPECT_EQ(doc.sentences[0].index, 0);
  EXPECT_EQ(doc.sentences[1].index, 1);
  EXPECT_FALSE(doc.sentences[0].tokens.empty());
  EXPECT_FALSE(doc.sentences[0].tokens[0].pos.empty());
}

TEST(DocumentTest, HtmlPipeline) {
  Document doc = AnnotateDocument("d2", "<p>Hello there.</p><p>Bye now.</p>", true);
  EXPECT_EQ(doc.sentences.size(), 2u);
}

TEST(DocumentTest, Deterministic) {
  std::string text = "Dr. A met Dr. B. They agreed on $1,200.";
  Document d1 = AnnotateDocument("x", text);
  Document d2 = AnnotateDocument("x", text);
  ASSERT_EQ(d1.sentences.size(), d2.sentences.size());
  for (size_t s = 0; s < d1.sentences.size(); ++s) {
    ASSERT_EQ(d1.sentences[s].tokens.size(), d2.sentences[s].tokens.size());
    for (size_t t = 0; t < d1.sentences[s].tokens.size(); ++t) {
      EXPECT_EQ(d1.sentences[s].tokens[t].text, d2.sentences[s].tokens[t].text);
      EXPECT_EQ(d1.sentences[s].tokens[t].pos, d2.sentences[s].tokens[t].pos);
    }
  }
}

TEST(GazetteerTest, LongestMatchWins) {
  Gazetteer gaz;
  gaz.Add("heart disease", "PHENOTYPE");
  gaz.Add("heart", "ORGAN");
  Document doc = AnnotateDocument("d", "Patients with heart disease improved.");
  auto mentions = gaz.FindMentions(doc.sentences[0]);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].type, "PHENOTYPE");
  EXPECT_EQ(mentions[0].text, "heart disease");
}

TEST(GazetteerTest, CaseInsensitive) {
  Gazetteer gaz;
  gaz.Add("BRCA1", "GENE");
  Document doc = AnnotateDocument("d", "Expression of brca1 rose.");
  auto mentions = gaz.FindMentions(doc.sentences[0]);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].type, "GENE");
}

TEST(GazetteerTest, PersonCandidates) {
  Document doc = AnnotateDocument("d", "Barack Obama and Michelle Obama were married.");
  auto mentions = Gazetteer::FindPersonCandidates(doc.sentences[0]);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].text, "Barack Obama");
  EXPECT_EQ(mentions[1].text, "Michelle Obama");
}

TEST(GazetteerTest, PriceCandidates) {
  Document doc = AnnotateDocument("d", "Special $ 120 per hour or 150 roses tonight.");
  auto mentions = Gazetteer::FindPriceCandidates(doc.sentences[0]);
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].type, "PRICE");
  EXPECT_EQ(mentions[1].type, "PRICE");
}

TEST(GazetteerTest, EmptySentence) {
  Gazetteer gaz;
  gaz.Add("x", "T");
  Sentence s;
  EXPECT_TRUE(gaz.FindMentions(s).empty());
  EXPECT_TRUE(Gazetteer::FindPersonCandidates(s).empty());
  EXPECT_TRUE(Gazetteer::FindPriceCandidates(s).empty());
}

}  // namespace
}  // namespace dd
