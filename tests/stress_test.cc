// Model-based stress tests: the Table against a reference std::set under
// random workloads, and every SpouseApp option combination producing a
// valid, analyzable DDlog program (the devloop/bench paths toggle these
// freely, so all 2^6 program variants must parse).

#include <gtest/gtest.h>

#include <set>

#include "ddlog/parser.h"
#include "dist/coordinator.h"
#include "storage/table.h"
#include "testdata/ads_app.h"
#include "testdata/genomics_app.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"

namespace dd {
namespace {

class TableModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TableModelTest, MatchesReferenceSetModel) {
  Rng rng(GetParam());
  Table table("t", Schema({{"a", ValueType::kInt}, {"b", ValueType::kString}}));
  std::set<std::pair<int64_t, std::string>> model;

  const char* words[] = {"x", "y", "z", "w"};
  for (int op = 0; op < 3000; ++op) {
    int64_t a = rng.NextInt(0, 20);
    std::string b = words[rng.NextBounded(4)];
    Tuple t({Value::Int(a), Value::String(b)});
    double dice = rng.NextDouble();
    if (dice < 0.55) {
      auto result = table.Insert(t);
      ASSERT_TRUE(result.ok());
      bool was_new = model.emplace(a, b).second;
      EXPECT_EQ(result->second, was_new);
    } else if (dice < 0.9) {
      bool erased_table = table.Erase(t);
      bool erased_model = model.erase({a, b}) > 0;
      EXPECT_EQ(erased_table, erased_model);
    } else {
      EXPECT_EQ(table.Contains(t), model.count({a, b}) > 0);
    }
    if (op % 500 == 0) {
      ASSERT_EQ(table.size(), model.size());
      // Full content check.
      for (const Tuple& row : table.Scan()) {
        EXPECT_TRUE(model.count({row.at(0).AsInt(), row.at(1).AsString()}) > 0);
      }
    }
  }
  EXPECT_EQ(table.size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableModelTest, ::testing::Values(1, 2, 3, 4));

TEST(SpouseAppMatrixTest, EveryOptionComboYieldsValidProgram) {
  for (int mask = 0; mask < 64; ++mask) {
    SpouseAppOptions app;
    app.use_distance_features = mask & 1;
    app.use_bow_features = mask & 2;
    app.use_phrase_features = mask & 4;
    app.use_sibling_negatives = mask & 8;
    app.use_closure_negatives = mask & 16;
    app.entity_level = mask & 32;
    std::string source = SpouseDdlog(app);
    auto program = ParseDdlog(source);
    ASSERT_TRUE(program.ok()) << "mask " << mask << ": "
                              << program.status().ToString();
    ASSERT_TRUE(AnalyzeProgram(*program).ok())
        << "mask " << mask << ": " << source;
    // Round-trip through the printer too.
    auto reparsed = ParseDdlog(program->ToString());
    ASSERT_TRUE(reparsed.ok()) << "mask " << mask;
    EXPECT_EQ(program->rules.size(), reparsed->rules.size());
  }
}

TEST(DistCoordinatorStressTest, RepeatedLoopbackRunsStayClean) {
  // Hammer the coordinator/worker loopback under the sanitizers: several
  // back-to-back runs over varying shard counts reuse ports, threads,
  // sockets, and per-shard subgraphs; ASan/UBSan vet every teardown
  // path, and determinism must hold across the repeats.
  SyntheticGraphOptions graph_opts;
  graph_opts.num_variables = 120;
  graph_opts.factors_per_variable = 2.0;
  graph_opts.evidence_fraction = 0.2;
  graph_opts.num_weights = 12;
  graph_opts.seed = 77;
  const FactorGraph base = MakeRandomGraph(graph_opts);

  DistributedOptions options;
  options.launch = DistLaunchMode::kThreads;
  options.epochs = 4;
  options.burn_in = 8;
  options.num_samples = 24;
  options.sweeps_per_exchange = 4;

  for (int num_shards : {1, 2, 3}) {
    options.num_shards = num_shards;
    std::vector<double> first_marginals;
    for (int repeat = 0; repeat < 2; ++repeat) {
      FactorGraph graph = base;
      ASSERT_TRUE(graph.Finalize().ok());
      auto result = RunDistributed(&graph, options);
      ASSERT_TRUE(result.ok())
          << num_shards << " shards: " << result.status().ToString();
      ASSERT_EQ(result->marginals.size(), base.num_variables());
      if (repeat == 0) {
        first_marginals = result->marginals;
      } else {
        EXPECT_EQ(result->marginals, first_marginals)
            << num_shards << " shards: repeat run diverged";
      }
    }
  }
}

TEST(GenomicsAdsProgramsTest, ParseAndAnalyze) {
  // The other two applications' programs are valid under both toggles.
  for (bool closure : {false, true}) {
    GenomicsAppOptions genomics;
    genomics.use_closure_negatives = closure;
    auto program = ParseDdlog(GenomicsDdlog(genomics));
    ASSERT_TRUE(program.ok());
    EXPECT_TRUE(AnalyzeProgram(*program).ok());
  }
  auto ads = ParseDdlog(AdsDdlog());
  ASSERT_TRUE(ads.ok());
  EXPECT_TRUE(AnalyzeProgram(*ads).ok());
}

}  // namespace
}  // namespace dd
