#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "factor/graph.h"
#include "factor/io.h"
#include "serve/epoch.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "testdata/spouse_app.h"
#include "util/failpoint.h"

namespace dd {
namespace {

// ---- Deterministic epoch fixtures ----------------------------------------

constexpr int kNumRelations = 2;

// Bitwise-deterministic marginal per (epoch, var): pure integer mixing
// then one division, so every thread/machine computes the identical
// double. A reader that observes a response where probability !=
// ExpectedMarginal(response.epoch, var) has seen a torn epoch.
double ExpectedMarginal(uint64_t epoch, uint32_t var) {
  uint64_t h = epoch * 1000003ULL + var * 2654435761ULL;
  h ^= h >> 13;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return static_cast<double>(h % 100000ULL) / 99999.0;
}

std::string RelationName(int idx) { return "rel" + std::to_string(idx); }

bool VarLive(uint32_t var) { return var % 17 != 3; }

// Variables interleave relations: var v belongs to relation v %
// kNumRelations at row v / kNumRelations.
std::string BuildEpochBytes(uint64_t epoch_id, size_t num_vars) {
  FactorGraph graph;
  uint32_t weight = graph.AddWeight(1.0, false, "serving-test-weight");
  for (size_t v = 0; v < num_vars; ++v) {
    uint32_t id = graph.AddVariable(v % 5 == 0, v % 2 == 0);
    EXPECT_TRUE(graph.AddFactor(FactorFunc::kIsTrue, weight, {{id, true}}).ok());
  }
  EXPECT_TRUE(graph.Finalize().ok());
  std::vector<double> marginals(num_vars);
  std::vector<EpochVarEntry> vars(num_vars);
  for (uint32_t v = 0; v < num_vars; ++v) {
    marginals[v] = ExpectedMarginal(epoch_id, v);
    vars[v] = EpochVarEntry{RelationName(v % kNumRelations),
                            static_cast<int64_t>(v / kNumRelations),
                            VarLive(v)};
  }
  return EncodeEpochSnapshot(graph, marginals, vars, epoch_id);
}

std::string WriteEpochFile(const std::string& name, uint64_t epoch_id,
                           size_t num_vars) {
  std::string path = ::testing::TempDir() + name;
  EXPECT_TRUE(WriteBytesAtomic(BuildEpochBytes(epoch_id, num_vars), path).ok());
  return path;
}

// Epoch directories accumulate state by design (CURRENT survives
// restarts), so directory tests must start from scratch.
std::string FreshDir(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

class ServingTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

// ---- Epoch format ---------------------------------------------------------

TEST_F(ServingTest, EncodeLoadRoundTrip) {
  std::string path = WriteEpochFile("epoch_roundtrip.snap", 3, 64);
  auto epoch = ServingEpoch::Load(path);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch->epoch(), 3u);
  EXPECT_EQ(epoch->num_variables(), 64u);
  EXPECT_EQ(epoch->num_factors(), 64u);
  ASSERT_EQ(epoch->relations().size(), static_cast<size_t>(kNumRelations));
  for (uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(epoch->marginal(v), ExpectedMarginal(3, v));  // bitwise
    EXPECT_EQ(epoch->var_live(v), VarLive(v));
    EXPECT_EQ(epoch->var_relation(v), RelationName(v % kNumRelations));
    EXPECT_EQ(epoch->var_row(v), static_cast<int64_t>(v / kNumRelations));
  }
  // Live facts resolve; dead ones are NotFound even though the slot exists.
  for (uint32_t v = 0; v < 64; ++v) {
    auto found = epoch->FindVar(RelationName(v % kNumRelations),
                                static_cast<int64_t>(v / kNumRelations));
    if (VarLive(v)) {
      ASSERT_TRUE(found.ok());
      EXPECT_EQ(*found, v);
    } else {
      EXPECT_EQ(found.status().code(), StatusCode::kNotFound);
    }
  }
  EXPECT_EQ(epoch->FindVar("no_such_relation", 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(epoch->FindVar(RelationName(0), 1 << 20).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServingTest, LoadRejectsNonEpochSnapshot) {
  // A valid DDSN container that is not a serving epoch (a pipeline-style
  // snapshot with META only).
  GraphSnapshot snapshot;
  snapshot.meta["kind"] = "pipeline-manifest";
  std::string path = ::testing::TempDir() + "not_an_epoch.snap";
  ASSERT_TRUE(WriteGraphSnapshot(snapshot, path).ok());
  auto epoch = ServingEpoch::Load(path);
  ASSERT_FALSE(epoch.ok());
  EXPECT_EQ(epoch.status().code(), StatusCode::kCorruption);
}

// Flip every byte of a valid epoch file (one at a time): the loader must
// reject every mutant with an error — never crash, never accept — and a
// server pointed at the mutant must keep serving its current epoch.
TEST_F(ServingTest, EveryByteCorruptionRejectedAndPreviousEpochKeepsServing) {
  const std::string good = BuildEpochBytes(1, 16);
  std::string good_path = ::testing::TempDir() + "corrupt_base.snap";
  ASSERT_TRUE(WriteBytesAtomic(good, good_path).ok());

  KbcServer server;
  ASSERT_TRUE(server.LoadAndSwap(good_path).ok());
  ASSERT_EQ(server.current_epoch_id(), 1u);

  std::string mutant_path = ::testing::TempDir() + "corrupt_mutant.snap";
  for (size_t i = 0; i < good.size(); ++i) {
    std::string mutant = good;
    mutant[i] = static_cast<char>(mutant[i] ^ 0xFF);
    ASSERT_TRUE(WriteBytesAtomic(mutant, mutant_path).ok());
    Status st = server.LoadAndSwap(mutant_path);
    ASSERT_FALSE(st.ok()) << "byte " << i << " flip was accepted";
    ASSERT_EQ(server.current_epoch_id(), 1u)
        << "byte " << i << " flip displaced the serving epoch";
  }
  // Truncations at a few boundaries are rejected too.
  for (size_t len : {size_t{0}, size_t{1}, size_t{7}, good.size() / 2,
                     good.size() - 1}) {
    ASSERT_TRUE(WriteBytesAtomic(good.substr(0, len), mutant_path).ok());
    EXPECT_FALSE(server.LoadAndSwap(mutant_path).ok()) << "len " << len;
    EXPECT_EQ(server.current_epoch_id(), 1u);
  }
  EXPECT_GE(server.stats().swap_rejected_invalid, good.size());
}

// ---- Epoch directories ----------------------------------------------------

TEST_F(ServingTest, PublishAndCurrentRoundTrip) {
  EpochDirectory dir(FreshDir("epochs_roundtrip"));
  ASSERT_TRUE(dir.Create().ok());
  ASSERT_TRUE(dir.Create().ok());  // idempotent
  EXPECT_EQ(dir.CurrentEpochId().status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(dir.Publish(1, BuildEpochBytes(1, 32)).ok());
  ASSERT_TRUE(dir.Publish(2, BuildEpochBytes(2, 32)).ok());
  auto current = dir.CurrentEpochId();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 2u);

  // Stale and duplicate publishes are refused.
  EXPECT_EQ(dir.Publish(2, BuildEpochBytes(2, 32)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dir.Publish(1, BuildEpochBytes(1, 32)).code(),
            StatusCode::kInvalidArgument);

  auto file = dir.CurrentEpochFile();
  ASSERT_TRUE(file.ok());
  auto epoch = ServingEpoch::Load(*file);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch->epoch(), 2u);
}

TEST_F(ServingTest, PublishFailpointLeavesPreviousCurrent) {
  EpochDirectory dir(FreshDir("epochs_pubfail"));
  ASSERT_TRUE(dir.Create().ok());
  ASSERT_TRUE(dir.Publish(1, BuildEpochBytes(1, 32)).ok());

  FailpointConfig config;
  config.code = StatusCode::kIoError;
  Failpoints::Instance().Enable(failpoints::kServePublish, config);
  EXPECT_FALSE(dir.Publish(2, BuildEpochBytes(2, 32)).ok());
  Failpoints::Instance().Reset();

  // CURRENT still names epoch 1 and it still loads; the orphaned epoch-2
  // file is harmless and the id can be reused.
  auto current = dir.CurrentEpochId();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1u);
  ASSERT_TRUE(ServingEpoch::Load(*dir.CurrentEpochFile()).ok());
  EXPECT_TRUE(dir.Publish(2, BuildEpochBytes(2, 32)).ok());
}

// ---- Failpoints on the load/swap path -------------------------------------

TEST_F(ServingTest, LoadFailpointsRejectSwapAndKeepServing) {
  std::string epoch1 = WriteEpochFile("fp_epoch1.snap", 1, 32);
  std::string epoch2 = WriteEpochFile("fp_epoch2.snap", 2, 32);

  for (const char* site :
       {failpoints::kServeEpochLoad, failpoints::kFactorIoRead,
        failpoints::kSnapshotValidate, failpoints::kServeEpochSwap}) {
    SCOPED_TRACE(site);
    ServerOptions options;
    options.load_retry.max_attempts = 1;  // test the sites, not the retry
    KbcServer server(options);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.LoadAndSwap(epoch1).ok());

    FailpointConfig config;
    config.code = StatusCode::kIoError;
    Failpoints::Instance().Enable(site, config);
    EXPECT_FALSE(server.LoadAndSwap(epoch2).ok());
    Failpoints::Instance().Reset();

    // Still serving epoch 1, and queries still answer.
    EXPECT_EQ(server.current_epoch_id(), 1u);
    QueryRequest request;
    request.relation = RelationName(0);
    request.row = 0;
    auto response = server.Query(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->epoch, 1u);
    EXPECT_EQ(response->probability, ExpectedMarginal(1, 0));

    // Once the fault clears, the swap goes through.
    EXPECT_TRUE(server.LoadAndSwap(epoch2).ok());
    EXPECT_EQ(server.current_epoch_id(), 2u);
    server.Stop();
  }
}

TEST_F(ServingTest, TransientLoadFaultIsRetriedAway) {
  std::string path = WriteEpochFile("fp_retry.snap", 1, 32);
  ServerOptions options;
  options.load_retry.max_attempts = 3;
  options.load_retry.initial_backoff_ms = 0;  // no sleeping in tests
  KbcServer server(options);

  FailpointConfig config;
  config.code = StatusCode::kIoError;
  config.max_hits = 2;  // first two attempts fail, third succeeds
  Failpoints::Instance().Enable(failpoints::kServeEpochLoad, config);
  EXPECT_TRUE(server.LoadAndSwap(path).ok());
  EXPECT_EQ(server.current_epoch_id(), 1u);
}

TEST_F(ServingTest, CorruptionIsNotRetried) {
  std::string path = WriteEpochFile("fp_noretry.snap", 1, 32);
  ServerOptions options;
  options.load_retry.max_attempts = 5;
  options.load_retry.initial_backoff_ms = 0;
  KbcServer server(options);

  FailpointConfig config;
  config.code = StatusCode::kCorruption;
  Failpoints::Instance().Enable(failpoints::kServeEpochLoad, config);
  EXPECT_EQ(server.LoadAndSwap(path).code(), StatusCode::kCorruption);
  // A permanent error burns exactly one attempt.
  EXPECT_EQ(Failpoints::Instance().fired_count(failpoints::kServeEpochLoad), 1u);
}

TEST_F(ServingTest, CrashHookVariantAtEverySite) {
  std::string epoch1 = WriteEpochFile("fp_crash1.snap", 1, 32);
  std::string epoch2 = WriteEpochFile("fp_crash2.snap", 2, 32);
  for (const char* site :
       {failpoints::kServeEpochLoad, failpoints::kServeEpochSwap,
        failpoints::kSnapshotValidate}) {
    SCOPED_TRACE(site);
    std::string crashed_at;
    Failpoints::Instance().SetCrashHook(
        [&](const std::string& name) { crashed_at = name; });
    FailpointConfig config;
    config.action = FailpointAction::kCrash;
    config.max_hits = 1;
    Failpoints::Instance().Enable(site, config);

    KbcServer server;
    ASSERT_TRUE(server.LoadAndSwap(epoch1).ok());
    // The non-fatal hook records the site; the site continues unharmed
    // (the real default hook would have killed the process here, which
    // the recovery tests cover via child processes).
    EXPECT_EQ(crashed_at, site);
    EXPECT_TRUE(server.LoadAndSwap(epoch2).ok());
    Failpoints::Instance().Reset();
  }
}

TEST_F(ServingTest, MmapFailpointFallsBackToHeapAndStillServes) {
  std::string path = WriteEpochFile("fp_mmap.snap", 1, 32);
  FailpointConfig config;
  Failpoints::Instance().Enable(failpoints::kSnapshotMmap, config);
  auto epoch = ServingEpoch::Load(path);
  EXPECT_EQ(Failpoints::Instance().fired_count(failpoints::kSnapshotMmap), 1u);
  Failpoints::Instance().Reset();
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(epoch->marginal(5), ExpectedMarginal(1, 5));
}

// ---- Server behavior ------------------------------------------------------

TEST_F(ServingTest, NoEpochLoadedIsUnavailable) {
  KbcServer server;
  ASSERT_TRUE(server.Start().ok());
  QueryRequest request;
  request.relation = RelationName(0);
  auto response = server.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.current_epoch_id(), 0u);
}

TEST_F(ServingTest, QueryKindsAnswerCorrectly) {
  std::string path = WriteEpochFile("kinds.snap", 1, 64);
  KbcServer server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(path).ok());

  // Marginal.
  QueryRequest request;
  request.kind = QueryKind::kMarginal;
  request.relation = RelationName(0);
  request.row = 4;  // var 8
  auto response = server.Query(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->probability, ExpectedMarginal(1, 8));

  // Fact thresholding, both sides.
  request.kind = QueryKind::kFact;
  request.threshold = response->probability;  // inclusive
  auto fact = server.Query(request);
  ASSERT_TRUE(fact.ok());
  EXPECT_TRUE(fact->is_fact);
  request.threshold = response->probability + 1e-9;
  fact = server.Query(request);
  ASSERT_TRUE(fact.ok());
  EXPECT_FALSE(fact->is_fact);

  // Dead rows are NotFound.
  QueryRequest dead;
  dead.relation = RelationName(3 % kNumRelations);
  dead.row = 3 / kNumRelations;  // var 3 is dead (VarLive)
  ASSERT_FALSE(VarLive(3));
  EXPECT_EQ(server.Query(dead).status().code(), StatusCode::kNotFound);

  // Top-k: descending probability, only live vars of the relation,
  // exactly the brute-force answer.
  QueryRequest topk;
  topk.kind = QueryKind::kTopK;
  topk.relation = RelationName(1);
  topk.k = 5;
  auto top = server.Query(topk);
  ASSERT_TRUE(top.ok());
  std::vector<std::pair<double, int64_t>> brute;
  for (uint32_t v = 1; v < 64; v += kNumRelations) {
    if (!VarLive(v)) continue;
    brute.emplace_back(ExpectedMarginal(1, v),
                       static_cast<int64_t>(v / kNumRelations));
  }
  std::sort(brute.begin(), brute.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  ASSERT_EQ(top->top.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(top->top[i].probability, brute[i].first) << i;
    EXPECT_EQ(top->top[i].row, brute[i].second) << i;
  }
  EXPECT_EQ(server.Query([] {
              QueryRequest r;
              r.kind = QueryKind::kTopK;
              r.relation = "no_such_relation";
              return r;
            }())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(ServingTest, StaleSwapRefusedLoudly) {
  std::string epoch1 = WriteEpochFile("stale1.snap", 1, 32);
  std::string epoch2 = WriteEpochFile("stale2.snap", 2, 32);
  KbcServer server;
  ASSERT_TRUE(server.LoadAndSwap(epoch2).ok());
  EXPECT_EQ(server.LoadAndSwap(epoch1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.LoadAndSwap(epoch2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.current_epoch_id(), 2u);
  EXPECT_EQ(server.stats().swap_rejected_stale, 2u);
}

TEST_F(ServingTest, CacheHitsStampedByEpochAndInvalidatedOnSwap) {
  std::string epoch1 = WriteEpochFile("cache1.snap", 1, 32);
  std::string epoch2 = WriteEpochFile("cache2.snap", 2, 32);
  KbcServer server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(epoch1).ok());

  QueryRequest request;
  request.relation = RelationName(0);
  request.row = 7;  // var 14
  auto first = server.Query(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = server.Query(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->probability, first->probability);
  EXPECT_EQ(server.stats().cache_hits, 1u);

  ASSERT_TRUE(server.LoadAndSwap(epoch2).ok());
  auto after = server.Query(request);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->from_cache);  // swap invalidated the entry
  EXPECT_EQ(after->epoch, 2u);
  EXPECT_EQ(after->probability, ExpectedMarginal(2, 14));
  EXPECT_NE(after->probability, first->probability);
}

TEST_F(ServingTest, DeadlineExpiredAtAdmissionAndMidExecution) {
  std::string path = WriteEpochFile("deadline.snap", 1, 32);
  ServerOptions options;
  options.synthetic_delay_ms = 20;
  KbcServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(path).ok());

  // Already expired: rejected at admission without queueing.
  QueryRequest request;
  request.relation = RelationName(0);
  request.deadline = Deadline::AfterMillis(0);
  auto response = server.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);

  // Expires during execution (synthetic delay outlives the budget).
  request.deadline = Deadline::AfterMillis(2);
  response = server.Query(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server.stats().deadline_exceeded, 1u);

  // Without a deadline the same query answers fine.
  request.deadline = Deadline();
  response = server.Query(request);
  EXPECT_TRUE(response.ok());
}

TEST_F(ServingTest, QueueBudgetShedsLateRequests) {
  std::string path = WriteEpochFile("budget.snap", 1, 32);
  ServerOptions options;
  options.num_workers = 1;
  options.synthetic_delay_ms = 30;
  options.queue_budget_ms = 5;
  options.max_queue = 16;
  KbcServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(path).ok());

  // Three concurrent requests against one worker burning 30ms each: the
  // ones that sit in the queue blow the 5ms budget and are shed.
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      QueryRequest request;
      request.relation = RelationName(0);
      request.row = 1;
      auto response = server.Query(request);
      if (response.ok()) {
        ++ok;
      } else if (response.status().code() == StatusCode::kUnavailable) {
        ++shed;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok + shed + other, 3);
  EXPECT_EQ(other, 0);
  EXPECT_GE(shed.load(), 1);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(server.stats().shed_queue_budget, static_cast<uint64_t>(shed));
}

TEST_F(ServingTest, StopFailsPendingRequestsWithUnavailable) {
  std::string path = WriteEpochFile("stop.snap", 1, 32);
  ServerOptions options;
  options.num_workers = 1;
  options.synthetic_delay_ms = 25;
  options.queue_budget_ms = 0;  // no budget shedding in this test
  KbcServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(path).ok());

  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&] {
      QueryRequest request;
      request.relation = RelationName(0);
      auto response = server.Query(request);
      // Every request resolves: a real answer or an explicit Unavailable
      // — never a hang, never a dropped promise.
      EXPECT_TRUE(response.ok() ||
                  response.status().code() == StatusCode::kUnavailable);
      ++answered;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.Stop();
  for (auto& t : clients) t.join();
  EXPECT_EQ(answered.load(), 4);
  // Queries after Stop are refused outright.
  QueryRequest request;
  request.relation = RelationName(0);
  EXPECT_EQ(server.Query(request).status().code(), StatusCode::kUnavailable);
}

// ---- Chaos: swaps under concurrent load -----------------------------------

// Readers hammer the server while a swapper publishes fresh epochs
// through an EpochDirectory. Every successful response must be exactly
// ExpectedMarginal(response.epoch, var) — bitwise — or a reader saw a
// torn/mixed epoch. Per-reader epoch ids must never go backwards.
TEST_F(ServingTest, SwapsUnderConcurrentLoadServeConsistentEpochs) {
  constexpr size_t kVars = 512;
  constexpr uint64_t kLastEpoch = 5;
  EpochDirectory dir(FreshDir("epochs_chaos"));
  ASSERT_TRUE(dir.Create().ok());
  ASSERT_TRUE(dir.Publish(1, BuildEpochBytes(1, kVars)).ok());

  ServerOptions options;
  options.num_workers = 2;
  options.cache_entries = 128;
  options.queue_budget_ms = 0;  // closed-loop readers; don't shed
  KbcServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadCurrent(dir).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<int> torn{0}, regressed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        uint32_t var = static_cast<uint32_t>(rng.NextBounded(kVars));
        if (!VarLive(var)) continue;
        QueryRequest request;
        request.relation = RelationName(var % kNumRelations);
        request.row = static_cast<int64_t>(var / kNumRelations);
        auto response = server.Query(request);
        if (!response.ok()) continue;  // shed/stopping are fine
        if (response->probability != ExpectedMarginal(response->epoch, var)) {
          ++torn;
        }
        if (response->epoch < last_epoch) ++regressed;
        last_epoch = response->epoch;
        ++verified;
      }
    });
  }

  for (uint64_t e = 2; e <= kLastEpoch; ++e) {
    ASSERT_TRUE(dir.Publish(e, BuildEpochBytes(e, kVars)).ok());
    ASSERT_TRUE(server.LoadCurrent(dir).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  stop = true;
  for (auto& t : readers) t.join();
  server.Stop();

  EXPECT_EQ(torn.load(), 0) << "a reader observed a torn epoch";
  EXPECT_EQ(regressed.load(), 0) << "a reader saw epochs go backwards";
  EXPECT_GT(verified.load(), 0u);
  EXPECT_EQ(server.current_epoch_id(), kLastEpoch);
  EXPECT_EQ(server.stats().swaps, kLastEpoch);
}

// Saturate a tiny admission queue with the load generator: requests are
// shed with Unavailable (never dropped, never crashed) and the
// accounting identity holds exactly.
TEST_F(ServingTest, AdmissionSaturationShedsWithUnavailable) {
  std::string path = WriteEpochFile("saturate.snap", 1, 128);
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 2;
  options.queue_budget_ms = 50;
  options.synthetic_delay_ms = 2;
  KbcServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadAndSwap(path).ok());

  LoadgenOptions load;
  load.num_clients = 4;
  load.duration_ms = 150;
  load.relations = {RelationName(0), RelationName(1)};
  load.row_space = 128;  // includes rows past the epoch: NotFound mixes in
  LoadgenReport report = RunLoadgen(&server, load);
  server.Stop();

  EXPECT_TRUE(report.Accounted())
      << "issued=" << report.issued << " ok=" << report.ok
      << " nf=" << report.not_found << " shed=" << report.shed
      << " dl=" << report.deadline_exceeded << " other=" << report.other_errors;
  EXPECT_GT(report.issued, 0u);
  EXPECT_GT(report.ok, 0u);
  EXPECT_GT(report.shed, 0u);  // 4 clients vs queue of 2: must shed
  EXPECT_EQ(report.other_errors, 0u);
  EXPECT_TRUE(report.epochs_monotone);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed_queue_full + stats.shed_queue_budget, report.shed);
}

// ---- Pipeline integration -------------------------------------------------

TEST_F(ServingTest, PipelinePublishesEpochServedBitIdentically) {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 20;
  corpus_opts.seed = 21;
  SpouseCorpus corpus = GenerateSpouseCorpus(corpus_opts);
  PipelineOptions options;
  options.learn.epochs = 60;
  options.inference.full_burn_in = 50;
  options.inference.num_samples = 150;
  options.strategy = PipelineOptions::Strategy::kSampling;
  auto pipeline = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Run().ok());

  const std::string dir = FreshDir("epochs_pipeline");
  ASSERT_TRUE((*pipeline)->PublishEpoch(dir).ok());
  EpochDirectory epochs(dir);
  auto current = epochs.CurrentEpochId();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1u);

  KbcServer server;
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.LoadCurrent(epochs).ok());
  EXPECT_EQ(server.current_epoch_id(), 1u);

  // Every live query variable answers through the server with exactly
  // the marginal the pipeline computed (multiset comparison avoids
  // depending on row-id assignment details).
  const auto& info = (*pipeline)->grounder()->var_info();
  std::vector<double> served;
  for (const VarInfo& v : info) {
    if (!v.live || v.relation != "MarriedMention") continue;
    QueryRequest request;
    request.relation = v.relation;
    request.row = v.row_id;
    auto response = server.Query(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    served.push_back(response->probability);
  }
  auto marginals = (*pipeline)->Marginals("MarriedMention");
  ASSERT_TRUE(marginals.ok());
  std::vector<double> computed;
  for (const auto& [tuple, p] : *marginals) computed.push_back(p);
  std::sort(served.begin(), served.end());
  std::sort(computed.begin(), computed.end());
  EXPECT_EQ(served, computed);  // bitwise-exact multiset equality

  // A second publish continues the monotone id sequence.
  ASSERT_TRUE((*pipeline)->PublishEpoch(dir).ok());
  current = epochs.CurrentEpochId();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 2u);
  ASSERT_TRUE(server.LoadCurrent(epochs).ok());
  EXPECT_EQ(server.current_epoch_id(), 2u);
  server.Stop();
}

// Extractor retry migrated onto util/retry.h: semantics are unchanged —
// one retry per document on a fresh emitter, then quarantine.
TEST_F(ServingTest, ExtractorRetryOnceSemanticsPreserved) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline
                  .LoadProgram("Person(name: text).\n"
                               "Q?(name: text).\n"
                               "Q(n) :- Person(n).")
                  .ok());
  int doc_calls = 0;
  pipeline.RegisterExtractor([&](const Document& doc, TupleEmitter* emitter) {
    ++doc_calls;
    if (doc.id == "flaky" && doc_calls % 2 == 1) {
      // Fails on the first attempt of the doc; the retry emits cleanly.
      return Status::IoError("transient UDF failure");
    }
    emitter->Emit("Person", Tuple({Value::String("p_" + doc.id)}));
    return Status::OK();
  });
  ASSERT_TRUE(pipeline.AddDocument("flaky", "some text here").ok());
  ASSERT_TRUE(pipeline.AddDocument("steady", "other text here").ok());
  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(pipeline.run_stats().extractor_retries, 1u);
  EXPECT_EQ(pipeline.run_stats().documents_processed, 2u);
  EXPECT_EQ(pipeline.run_stats().documents_quarantined, 0u);
}

}  // namespace
}  // namespace dd
