#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "ddlog/parser.h"
#include "testdata/spouse_app.h"

namespace dd {
namespace {

// Round trip: parse -> print -> parse again yields a structurally
// identical program (the printer emits parseable DDlog).
TEST(DdlogPrinterTest, RoundTripSpouseProgram) {
  SpouseAppOptions app;
  auto first = ParseDdlog(SpouseDdlog(app));
  ASSERT_TRUE(first.ok());
  std::string printed = first->ToString();
  auto second = ParseDdlog(printed);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\n" << printed;

  ASSERT_EQ(first->declarations.size(), second->declarations.size());
  for (size_t i = 0; i < first->declarations.size(); ++i) {
    EXPECT_EQ(first->declarations[i].name, second->declarations[i].name);
    EXPECT_EQ(first->declarations[i].is_query, second->declarations[i].is_query);
    EXPECT_TRUE(first->declarations[i].schema == second->declarations[i].schema);
  }
  ASSERT_EQ(first->rules.size(), second->rules.size());
  for (size_t i = 0; i < first->rules.size(); ++i) {
    EXPECT_EQ(first->rules[i].kind, second->rules[i].kind);
    EXPECT_EQ(first->rules[i].ToString(), second->rules[i].ToString());
  }
  // And the re-printed text is stable (fixed point).
  EXPECT_EQ(printed, second->ToString());
}

TEST(DdlogPrinterTest, WeightSpecsRendered) {
  auto program = ParseDdlog(R"(
    T(x: int, f: text).
    Q?(x: int).
    Q(x) :- T(x, f) weight = identity(f).
    Q(x) :- T(x, f) weight = 2.5.
    Q(x) :- T(x, f) weight = ?.
    Q(x) :- T(x, f) weight = f.
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_NE(program->rules[0].ToString().find("weight = identity(f)"),
            std::string::npos);
  EXPECT_NE(program->rules[1].ToString().find("weight = 2.5"), std::string::npos);
  EXPECT_NE(program->rules[2].ToString().find("weight = ?"), std::string::npos);
  EXPECT_NE(program->rules[3].ToString().find("weight = f"), std::string::npos);
}

TEST(SupervisionWarningsTest, PipelineSurfacesOverlap) {
  // Feature identical to the supervision rule -> warning via pipeline API.
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline
                  .LoadProgram(R"(
    Cand(id: int).
    Feat(id: int, f: text).
    Kb(id: int).
    Q?(id: int).
    Q_Ev(id: int, label: bool).
    Q(id) :- Cand(id).
    Q(id) :- Cand(id), Feat(id, f) weight = identity(f).
    Q_Ev(id, true) :- Cand(id), Kb(id).
    Q_Ev(id, false) :- Cand(id), !Kb(id).
  )")
                  .ok());
  pipeline.RegisterExtractor([](const Document&, TupleEmitter* emitter) -> Status {
    for (int i = 0; i < 40; ++i) {
      emitter->Emit("Cand", Tuple({Value::Int(i)}));
      if (i < 20) {
        emitter->Emit("Kb", Tuple({Value::Int(i)}));
        emitter->Emit("Feat", Tuple({Value::Int(i), Value::String("in_kb")}));
      }
    }
    return Status::OK();
  });
  ASSERT_TRUE(pipeline.AddDocument("d", "x").ok());
  ASSERT_TRUE(pipeline.Run().ok());
  auto warnings = pipeline.SupervisionWarnings();
  ASSERT_TRUE(warnings.ok());
  EXPECT_NE(warnings->find("in_kb"), std::string::npos);
}

}  // namespace
}  // namespace dd
