#include <gtest/gtest.h>

#include <algorithm>

#include "core/feature_selection.h"
#include "core/udf.h"
#include "ddlog/parser.h"
#include "grounding/grounder.h"
#include "storage/catalog.h"
#include "util/rng.h"

namespace dd {
namespace {

/// Labeled candidates where one feature ("signal") tracks the label,
/// one ("noise") is random, and one ("rare") appears once.
class FeatureSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = ParseDdlog(R"(
      Cand(id: int).
      Feat(id: int, f: text).
      Kb(id: int).
      Q?(id: int).
      Q_Ev(id: int, label: bool).
      Q(id) :- Cand(id).
      Q(id) :- Cand(id), Feat(id, f) weight = identity(f).
      Q_Ev(id, true) :- Cand(id), Kb(id).
      Q_Ev(id, false) :- Cand(id), !Kb(id).
    )");
    ASSERT_TRUE(program.ok());
    program_ = std::move(program).value();

    Table* cand = *catalog_.CreateTable("Cand", Schema({{"id", ValueType::kInt}}));
    Table* feat = *catalog_.CreateTable(
        "Feat", Schema({{"id", ValueType::kInt}, {"f", ValueType::kString}}));
    Table* kb = *catalog_.CreateTable("Kb", Schema({{"id", ValueType::kInt}}));

    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(cand->Insert(Tuple({Value::Int(i)})).ok());
      bool positive = i % 2 == 0;
      if (positive) {
        ASSERT_TRUE(kb->Insert(Tuple({Value::Int(i)})).ok());
      }
      // Signal feature: tracks the label with 90% fidelity.
      if (rng.NextBernoulli(positive ? 0.9 : 0.1)) {
        ASSERT_TRUE(
            feat->Insert(Tuple({Value::Int(i), Value::String("signal")})).ok());
      }
      // Noise feature: label-independent coin flip.
      if (rng.NextBernoulli(0.5)) {
        ASSERT_TRUE(
            feat->Insert(Tuple({Value::Int(i), Value::String("noise")})).ok());
      }
    }
    // A feature observed exactly once.
    ASSERT_TRUE(feat->Insert(Tuple({Value::Int(0), Value::String("rare")})).ok());
  }

  Catalog catalog_;
  DdlogProgram program_;
  UdfRegistry udfs_;
};

TEST_F(FeatureSelectionTest, KeepsSignalPrunesNoiseAndRare) {
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());

  FeatureSelectionOptions options;
  options.learn.epochs = 400;
  options.learn.learning_rate = 0.05;
  options.learn.decay = 0.995;
  options.min_abs_weight = 0.15;
  options.min_observations = 3;
  auto selected = FeatureSelector::Run(&grounder, options);
  ASSERT_TRUE(selected.ok()) << selected.status().ToString();

  bool signal_kept = false, noise_kept = true, rare_kept = true;
  double signal_weight = 0, noise_weight = 0;
  for (const SelectedFeature& f : *selected) {
    if (f.key.find("\"signal\"") != std::string::npos) {
      signal_kept = f.kept;
      signal_weight = f.learned_weight;
    }
    if (f.key.find("\"noise\"") != std::string::npos) {
      noise_kept = f.kept;
      noise_weight = f.learned_weight;
    }
    if (f.key.find("\"rare\"") != std::string::npos) rare_kept = f.kept;
  }
  EXPECT_TRUE(signal_kept);
  EXPECT_FALSE(rare_kept);  // below min_observations
  // The signal feature out-weighs the noise one decisively; noise may or
  // may not cross the pruning bar on a given seed, but never beats signal.
  EXPECT_GT(std::fabs(signal_weight), std::fabs(noise_weight) * 2);
  (void)noise_kept;

  // Report renders and ranks by |weight| (signal first among features).
  std::string report = FeatureSelector::Report(*selected, 5);
  EXPECT_NE(report.find("signal"), std::string::npos);
  auto kept_keys = FeatureSelector::KeptKeys(*selected);
  EXPECT_FALSE(kept_keys.empty());
}

TEST_F(FeatureSelectionTest, SortedByEffectSize) {
  Grounder grounder(&catalog_, &program_, &udfs_);
  ASSERT_TRUE(grounder.Initialize().ok());
  FeatureSelectionOptions options;
  options.learn.epochs = 200;
  auto selected = FeatureSelector::Run(&grounder, options);
  ASSERT_TRUE(selected.ok());
  for (size_t i = 1; i < selected->size(); ++i) {
    EXPECT_GE(std::fabs((*selected)[i - 1].learned_weight),
              std::fabs((*selected)[i].learned_weight));
  }
}

}  // namespace
}  // namespace dd
