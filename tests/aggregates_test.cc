#include <gtest/gtest.h>

#include "query/aggregates.h"

namespace dd {
namespace {

/// claims(doctor text, amount double, city text)
Table MakeClaims() {
  Table t("claims", Schema({{"doctor", ValueType::kString},
                            {"amount", ValueType::kDouble},
                            {"city", ValueType::kString}}));
  auto add = [&](const char* doctor, double amount, const char* city) {
    EXPECT_TRUE(t.Insert(Tuple({Value::String(doctor), Value::Double(amount),
                                Value::String(city)}))
                    .ok());
  };
  add("Smith", 100, "Dallas");
  add("Smith", 300, "Dallas");
  add("Smith", 200, "Boston");
  add("Jones", 50, "Dallas");
  add("Jones", 150, "Boston");
  add("Lee", 1000, "Boston");
  return t;
}

TEST(AggregatesTest, CountStarGroupBy) {
  Table t = MakeClaims();
  auto rows = GroupBy(t, {"doctor"}, {{AggFunc::kCount, ""}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // Jones, Lee, Smith (sorted)
  EXPECT_EQ((*rows)[0].at(0).AsString(), "Jones");
  EXPECT_EQ((*rows)[0].at(1).AsInt(), 2);
  EXPECT_EQ((*rows)[2].at(0).AsString(), "Smith");
  EXPECT_EQ((*rows)[2].at(1).AsInt(), 3);
}

TEST(AggregatesTest, SumAvgMinMax) {
  Table t = MakeClaims();
  auto rows = GroupBy(t, {"city"},
                      {{AggFunc::kSum, "amount"},
                       {AggFunc::kAvg, "amount"},
                       {AggFunc::kMin, "amount"},
                       {AggFunc::kMax, "amount"}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // Boston: 200 + 150 + 1000.
  EXPECT_EQ((*rows)[0].at(0).AsString(), "Boston");
  EXPECT_DOUBLE_EQ((*rows)[0].at(1).AsDouble(), 1350.0);
  EXPECT_DOUBLE_EQ((*rows)[0].at(2).AsDouble(), 450.0);
  EXPECT_DOUBLE_EQ((*rows)[0].at(3).AsDouble(), 150.0);
  EXPECT_DOUBLE_EQ((*rows)[0].at(4).AsDouble(), 1000.0);
  // Dallas: 100 + 300 + 50.
  EXPECT_EQ((*rows)[1].at(0).AsString(), "Dallas");
  EXPECT_DOUBLE_EQ((*rows)[1].at(1).AsDouble(), 450.0);
}

TEST(AggregatesTest, MultiColumnGroupBy) {
  Table t = MakeClaims();
  auto rows = GroupBy(t, {"doctor", "city"}, {{AggFunc::kCount, ""}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);  // Smith appears in 2 cities, others 1-2
}

TEST(AggregatesTest, EmptyGroupByAggregatesWholeTable) {
  Table t = MakeClaims();
  auto rows = GroupBy(t, {}, {{AggFunc::kSum, "amount"}});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_DOUBLE_EQ((*rows)[0].at(0).AsDouble(), 1800.0);
}

TEST(AggregatesTest, EmptyTable) {
  Table t("empty", Schema({{"x", ValueType::kInt}}));
  auto rows = GroupBy(t, {"x"}, {{AggFunc::kCount, ""}});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(AggregatesTest, ErrorsOnBadColumns) {
  Table t = MakeClaims();
  EXPECT_FALSE(GroupBy(t, {"nope"}, {{AggFunc::kCount, ""}}).ok());
  EXPECT_FALSE(GroupBy(t, {"city"}, {{AggFunc::kSum, "nope"}}).ok());
  // SUM over a string column.
  EXPECT_FALSE(GroupBy(t, {"city"}, {{AggFunc::kSum, "doctor"}}).ok());
}

TEST(AggregatesTest, NullsSkipped) {
  Table t("t", Schema({{"g", ValueType::kInt}, {"x", ValueType::kDouble}}));
  ASSERT_TRUE(t.Insert(Tuple({Value::Int(1), Value::Double(10)})).ok());
  ASSERT_TRUE(t.Insert(Tuple({Value::Int(1), Value::Null()})).ok());
  auto rows = GroupBy(t, {"g"}, {{AggFunc::kSum, "x"}, {AggFunc::kMin, "x"}});
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0].at(1).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ((*rows)[0].at(2).AsDouble(), 10.0);
}

TEST(AggregatesTest, TopCountsSortedDescending) {
  Table t = MakeClaims();
  auto top = TopCounts(t, "doctor", 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);  // limit applied
  EXPECT_EQ((*top)[0].first.AsString(), "Smith");
  EXPECT_EQ((*top)[0].second, 3);
  EXPECT_EQ((*top)[1].second, 2);
}

TEST(AggregatesTest, IgnoresDeletedRows) {
  Table t = MakeClaims();
  t.Erase(Tuple({Value::String("Lee"), Value::Double(1000), Value::String("Boston")}));
  auto rows = GroupBy(t, {}, {{AggFunc::kSum, "amount"}});
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0].at(0).AsDouble(), 800.0);
}

}  // namespace
}  // namespace dd
