// Observability layer tests: exactness of sharded counters under
// contention, histogram quantiles on known distributions, span
// nesting/reentrancy, the JSON report, and the runtime/compile-time
// enable switch (the disabled path must record nothing).

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/trace.h"

namespace dd {
namespace {

/// Pull the first number following `"key":` out of a JSON document —
/// enough of a parser to round-trip the flat numeric leaves ToJson emits.
double JsonNumberAt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "key not in JSON: " << key;
  if (pos == std::string::npos) return -1;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    RunMetrics::Reset();
  }
  void TearDown() override {
    MetricsRegistry::SetEnabled(true);
    RunMetrics::Reset();
  }
};

#ifndef DD_METRICS_OFF

TEST_F(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Counter* counter = MetricsRegistry::Instance().GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterAddAndResetValues) {
  DD_COUNTER_ADD("test.counter_add", 3);
  DD_COUNTER_ADD("test.counter_add", 4);
  Counter* counter = MetricsRegistry::Instance().GetCounter("test.counter_add");
  EXPECT_EQ(counter->Value(), 7u);
  MetricsRegistry::Instance().ResetValues();
  EXPECT_EQ(counter->Value(), 0u);
  // Cached pointers stay valid across ResetValues.
  DD_COUNTER_ADD("test.counter_add", 2);
  EXPECT_EQ(counter->Value(), 2u);
}

TEST_F(MetricsTest, GaugeLastWriterWins) {
  DD_GAUGE_SET("test.gauge", 1.5);
  DD_GAUGE_SET("test.gauge", -2.25);
  EXPECT_DOUBLE_EQ(MetricsRegistry::Instance().GetGauge("test.gauge")->Value(),
                   -2.25);
}

TEST_F(MetricsTest, HistogramQuantilesOnKnownDistribution) {
  // Uniform 1..100 against decade buckets: every quantile interpolates to
  // exactly its rank.
  std::vector<double> bounds;
  for (int b = 10; b <= 100; b += 10) bounds.push_back(b);
  Histogram* h =
      MetricsRegistry::Instance().GetHistogram("test.hist_uniform", bounds);
  for (int v = 1; v <= 100; ++v) h->Observe(v);

  const HistogramStats stats = h->Stats();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.sum, 5050.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 100.0);
  EXPECT_NEAR(stats.p50, 50.0, 1e-9);
  EXPECT_NEAR(stats.p95, 95.0, 1e-9);
  EXPECT_NEAR(stats.p99, 99.0, 1e-9);
}

TEST_F(MetricsTest, HistogramSingleValueAndOverflow) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram(
      "test.hist_single", std::vector<double>{1.0, 2.0});
  h->Observe(1.5);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 1.5);  // clamped to observed [min, max]
  h->Observe(1000.0);  // overflow bucket
  const HistogramStats stats = h->Stats();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.max, 1000.0);
  EXPECT_LE(stats.p99, 1000.0);
}

TEST_F(MetricsTest, SpansNestIntoPaths) {
  EXPECT_EQ(TraceSpan::CurrentPath(), "");
  {
    DD_TRACE_SPAN_VAR(outer, "outer");
    EXPECT_EQ(TraceSpan::CurrentPath(), "outer");
    {
      DD_TRACE_SPAN("inner");
      EXPECT_EQ(TraceSpan::CurrentPath(), "outer/inner");
    }
    EXPECT_EQ(TraceSpan::CurrentPath(), "outer");
    outer.Attr("answer", 42.0);
  }
  EXPECT_EQ(TraceSpan::CurrentPath(), "");

  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 2u);  // completion order: inner first
  EXPECT_EQ(records[0].path, "outer/inner");
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_EQ(records[1].path, "outer");
  EXPECT_EQ(records[1].depth, 0);
  ASSERT_EQ(records[1].attrs.size(), 1u);
  EXPECT_EQ(records[1].attrs[0].first, "answer");
  EXPECT_DOUBLE_EQ(records[1].attrs[0].second, 42.0);
}

void Recurse(int depth) {
  DD_TRACE_SPAN("recurse");
  if (depth > 1) Recurse(depth - 1);
}

TEST_F(MetricsTest, SpanReentrancyExtendsPath) {
  Recurse(3);
  const auto records = Tracer::Instance().Records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].path, "recurse/recurse/recurse");
  EXPECT_EQ(records[0].depth, 2);
  EXPECT_EQ(records[2].path, "recurse");
  EXPECT_EQ(records[2].depth, 0);
}

TEST_F(MetricsTest, JsonRoundTripsValues) {
  DD_COUNTER_ADD("test.json_counter", 41);
  DD_COUNTER_ADD("test.json_counter", 1);
  DD_GAUGE_SET("test.json_gauge", 2.5);
  Histogram* h = MetricsRegistry::Instance().GetHistogram(
      "test.json_hist", std::vector<double>{10.0, 20.0});
  h->Observe(5.0);
  h->Observe(15.0);
  {
    DD_TRACE_SPAN_VAR(pipeline, "pipeline");
    { DD_TRACE_SPAN("extraction"); }
    { DD_TRACE_SPAN("grounding"); }
  }

  const std::string json = RunMetrics::ToJson();
  EXPECT_NE(json.find("\"schema\": \"dd-metrics-v1\""), std::string::npos);
  EXPECT_DOUBLE_EQ(JsonNumberAt(json, "test.json_counter"), 42.0);
  EXPECT_DOUBLE_EQ(JsonNumberAt(json, "test.json_gauge"), 2.5);
  // Fig. 2 phases: depth-1 spans under the pipeline root.
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"extraction\""), std::string::npos);
  EXPECT_NE(json.find("\"grounding\""), std::string::npos);
  // Histogram stats block round-trips count and sum.
  const size_t hist_pos = json.find("\"test.json_hist\"");
  ASSERT_NE(hist_pos, std::string::npos);
  EXPECT_DOUBLE_EQ(JsonNumberAt(json.substr(hist_pos), "count"), 2.0);
  EXPECT_DOUBLE_EQ(JsonNumberAt(json.substr(hist_pos), "sum"), 20.0);

  const std::string table = RunMetrics::ToTable();
  EXPECT_NE(table.find("test.json_counter"), std::string::npos);
  EXPECT_NE(table.find("pipeline/extraction"), std::string::npos);
}

#endif  // DD_METRICS_OFF

/// Enabled/disabled sweep. With the layer compiled out (DD_METRICS_OFF)
/// nothing records in either case; otherwise recording follows the
/// runtime switch. Either way the disabled path must record NOTHING.
class MetricsSwitchTest : public ::testing::TestWithParam<bool> {};

TEST_P(MetricsSwitchTest, RecordsOnlyWhenEnabled) {
  const bool runtime_enabled = GetParam();
#ifdef DD_METRICS_OFF
  const bool recording = false;
#else
  const bool recording = runtime_enabled;
#endif
  MetricsRegistry::SetEnabled(true);
  RunMetrics::Reset();
  MetricsRegistry::SetEnabled(runtime_enabled);

  DD_COUNTER_ADD("switch.counter", 7);
  DD_GAUGE_SET("switch.gauge", 3.5);
  DD_HISTOGRAM_OBSERVE("switch.hist", 1.0);
  { DD_TRACE_SPAN("switch.span"); }

  MetricsRegistry::SetEnabled(true);
  const auto snapshot = MetricsRegistry::Instance().Collect();
  const auto find_counter = snapshot.counters.find("switch.counter");
  const uint64_t counter_value =
      find_counter == snapshot.counters.end() ? 0 : find_counter->second;
  const auto find_gauge = snapshot.gauges.find("switch.gauge");
  const double gauge_value =
      find_gauge == snapshot.gauges.end() ? 0 : find_gauge->second;
  const auto find_hist = snapshot.histograms.find("switch.hist");
  const uint64_t hist_count =
      find_hist == snapshot.histograms.end() ? 0 : find_hist->second.count;

  EXPECT_EQ(counter_value, recording ? 7u : 0u);
  EXPECT_DOUBLE_EQ(gauge_value, recording ? 3.5 : 0.0);
  EXPECT_EQ(hist_count, recording ? 1u : 0u);
  EXPECT_EQ(Tracer::Instance().Records().size(), recording ? 1u : 0u);

  RunMetrics::Reset();
}

INSTANTIATE_TEST_SUITE_P(EnabledDisabled, MetricsSwitchTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Enabled" : "Disabled";
                         });

}  // namespace
}  // namespace dd
