#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "storage/value.h"

namespace dd {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Int(2));
  EXPECT_NE(Value::Int(1), Value::Double(1.0));  // typed equality
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-type: ordered by type tag, stable both directions.
  Value a = Value::Int(5), b = Value::String("x");
  EXPECT_NE(a < b, b < a);
}

TEST(ValueTest, HashDistinguishesValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::String("a").Hash(), Value::String("b").Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Bool(true).Hash(), Value::Bool(false).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "\"x\"");
}

Tuple T2(int64_t a, int64_t b) {
  return Tuple({Value::Int(a), Value::Int(b)});
}

TEST(TupleTest, EqualityAndHash) {
  EXPECT_EQ(T2(1, 2), T2(1, 2));
  EXPECT_NE(T2(1, 2), T2(2, 1));
  EXPECT_EQ(T2(1, 2).Hash(), T2(1, 2).Hash());
  EXPECT_NE(T2(1, 2).Hash(), T2(2, 1).Hash());  // order-sensitive
}

TEST(TupleTest, Ordering) {
  EXPECT_LT(T2(1, 2), T2(1, 3));
  EXPECT_LT(T2(1, 9), T2(2, 0));
  Tuple shorter({Value::Int(1)});
  EXPECT_LT(shorter, T2(1, 0));
}

Schema TwoIntSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

TEST(TableTest, InsertDedup) {
  Table t("t", TwoIntSchema());
  auto r1 = t.Insert(T2(1, 2));
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->second);
  auto r2 = t.Insert(T2(1, 2));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->second);               // duplicate
  EXPECT_EQ(r1->first, r2->first);        // same row id
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, TypeChecking) {
  Table t("t", TwoIntSchema());
  auto bad = t.Insert(Tuple({Value::Int(1), Value::String("x")}));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
  auto wrong_arity = t.Insert(Tuple({Value::Int(1)}));
  EXPECT_FALSE(wrong_arity.ok());
  // NULL allowed in any column.
  auto with_null = t.Insert(Tuple({Value::Int(1), Value::Null()}));
  EXPECT_TRUE(with_null.ok());
}

TEST(TableTest, EraseAndReinsertKeepsRowId) {
  Table t("t", TwoIntSchema());
  auto r1 = t.Insert(T2(1, 2));
  ASSERT_TRUE(r1.ok());
  int64_t id = r1->first;
  EXPECT_TRUE(t.Erase(T2(1, 2)));
  EXPECT_FALSE(t.Contains(T2(1, 2)));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Erase(T2(1, 2)));  // double erase is a no-op
  auto r2 = t.Insert(T2(1, 2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->first, id);  // tombstone reuse: stable id
  EXPECT_TRUE(r2->second);
}

TEST(TableTest, ScanReturnsOnlyLive) {
  Table t("t", TwoIntSchema());
  ASSERT_TRUE(t.Insert(T2(1, 1)).ok());
  ASSERT_TRUE(t.Insert(T2(2, 2)).ok());
  ASSERT_TRUE(t.Insert(T2(3, 3)).ok());
  t.Erase(T2(2, 2));
  auto rows = t.Scan();
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TableTest, FindReturnsMinusOneForDeleted) {
  Table t("t", TwoIntSchema());
  ASSERT_TRUE(t.Insert(T2(1, 1)).ok());
  t.Erase(T2(1, 1));
  EXPECT_EQ(t.Find(T2(1, 1)), -1);
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t = catalog.CreateTable("r", TwoIntSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.HasTable("r"));
  auto dup = catalog.CreateTable("r", TwoIntSchema());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto got = catalog.GetTable("r");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *t);
  EXPECT_TRUE(catalog.DropTable("r").ok());
  EXPECT_EQ(catalog.GetTable("r").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, GetOrCreateChecksSchema) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("r", TwoIntSchema()).ok());
  auto same = catalog.GetOrCreateTable("r", TwoIntSchema());
  EXPECT_TRUE(same.ok());
  Schema other({{"a", ValueType::kString}});
  auto mismatch = catalog.GetOrCreateTable("r", other);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kTypeError);
}

TEST(SchemaTest, FindColumn) {
  Schema s = TwoIntSchema();
  EXPECT_EQ(s.FindColumn("a"), 0);
  EXPECT_EQ(s.FindColumn("b"), 1);
  EXPECT_EQ(s.FindColumn("zzz"), -1);
}

}  // namespace
}  // namespace dd
