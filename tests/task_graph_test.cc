// TaskGraph scheduling contracts the pipeline and grounder build on:
// serial runs follow a deterministic topological order (ready nodes by
// ascending id), pooled runs respect every edge and run each node
// exactly once, errors pick a deterministic winner and skip dependents
// transitively, cycles and malformed edges surface as Internal, and
// node bodies may nest ParallelMorsels on the same pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "util/parallel.h"
#include "util/status.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"

namespace dd {
namespace {

// Serial oracle: among ready nodes, always the lowest id. A diamond with
// a detached tail pinned behind the slow side exercises the choice.
TEST(TaskGraphTest, SerialRunsReadyNodesInAscendingIdOrder) {
  TaskGraph tg;
  std::vector<int> order;
  auto rec = [&order](int id) {
    return [&order, id]() {
      order.push_back(id);
      return Status::OK();
    };
  };
  //     0
  //    / \
  //   1   2      4 (free)
  //    \ /
  //     3
  auto a = tg.AddNode("a", rec(0));
  auto b = tg.AddNode("b", rec(1));
  auto c = tg.AddNode("c", rec(2));
  auto d = tg.AddNode("d", rec(3));
  tg.AddNode("e", rec(4));
  tg.AddEdge(a, b);
  tg.AddEdge(a, c);
  tg.AddEdge(b, d);
  tg.AddEdge(c, d);
  ASSERT_TRUE(tg.Run(nullptr).ok());
  // 4 is ready from the start but has the highest id, so it runs last.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraphTest, PoolRunRespectsEdges) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 20; ++attempt) {
    TaskGraph tg;
    std::atomic<bool> root_done{false};
    std::atomic<int> mids_done{0};
    Status violation = Status::OK();
    std::mutex mu;
    auto note = [&](const char* msg) {
      std::lock_guard<std::mutex> lock(mu);
      if (violation.ok()) violation = Status::Internal(msg);
    };
    auto root = tg.AddNode("root", [&]() {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      root_done.store(true);
      return Status::OK();
    });
    std::vector<TaskGraph::NodeId> mids;
    for (int i = 0; i < 6; ++i) {
      auto mid = tg.AddNode("mid", [&]() {
        if (!root_done.load()) note("mid ran before its dependency");
        mids_done.fetch_add(1);
        return Status::OK();
      });
      tg.AddEdge(root, mid);
      mids.push_back(mid);
    }
    auto sink = tg.AddNode("sink", [&]() {
      if (mids_done.load() != 6) note("sink ran before all mids");
      return Status::OK();
    });
    for (auto mid : mids) tg.AddEdge(mid, sink);
    ASSERT_TRUE(tg.Run(&pool).ok());
    EXPECT_TRUE(violation.ok()) << violation.ToString();
  }
}

// Regression for the initial-submission race: a fast root fanning out
// wide must not let the coordinator double-submit a child whose
// indegree a finished parent already decremented. Every node runs
// exactly once, at any scheduling.
TEST(TaskGraphTest, NodesRunExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kNodes = 64;
  for (int attempt = 0; attempt < 50; ++attempt) {
    TaskGraph tg;
    std::vector<std::atomic<int>> runs(kNodes);
    for (auto& r : runs) r.store(0);
    std::vector<TaskGraph::NodeId> ids;
    for (size_t i = 0; i < kNodes; ++i) {
      ids.push_back(tg.AddNode("n", [&runs, i]() {
        runs[i].fetch_add(1);
        return Status::OK();
      }));
    }
    // Chain of cheap hubs, each fanning out to the next few nodes.
    for (size_t i = 0; i + 1 < kNodes; ++i) {
      tg.AddEdge(ids[i], ids[i + 1]);
      if (i + 5 < kNodes) tg.AddEdge(ids[i], ids[i + 5]);
    }
    ASSERT_TRUE(tg.Run(&pool).ok());
    for (size_t i = 0; i < kNodes; ++i) {
      ASSERT_EQ(runs[i].load(), 1) << "node " << i << " attempt " << attempt;
    }
  }
}

// A failed node poisons its dependents (transitively); unrelated nodes
// still run; the returned status is the lowest-id failure no matter
// which one finished first.
TEST(TaskGraphTest, LowestIdFailureWinsAndDependentsSkip) {
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    TaskGraph tg;
    std::atomic<bool> dependent_ran{false};
    std::atomic<bool> unrelated_ran{false};
    auto slow_fail = tg.AddNode("slow_fail", []() {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return Status::InvalidArgument("early failure");
    });
    auto fast_fail = tg.AddNode("fast_fail", []() {
      return Status::Internal("late failure");
    });
    auto dependent = tg.AddNode("dependent", [&]() {
      dependent_ran.store(true);
      return Status::OK();
    });
    auto grandchild = tg.AddNode("grandchild", [&]() {
      dependent_ran.store(true);
      return Status::OK();
    });
    auto unrelated = tg.AddNode("unrelated", [&]() {
      unrelated_ran.store(true);
      return Status::OK();
    });
    tg.AddEdge(slow_fail, dependent);
    tg.AddEdge(dependent, grandchild);
    Status st = tg.Run(&pool);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(st.message(), "early failure");
    EXPECT_FALSE(dependent_ran.load());
    EXPECT_TRUE(unrelated_ran.load());
    EXPECT_TRUE(tg.NodeSkipped(dependent));
    EXPECT_TRUE(tg.NodeSkipped(grandchild));
    EXPECT_FALSE(tg.NodeSkipped(fast_fail));
    EXPECT_FALSE(tg.NodeSkipped(unrelated));
    EXPECT_EQ(tg.NodeStatus(fast_fail).code(), StatusCode::kInternal);
  }
}

TEST(TaskGraphTest, CycleReturnsInternal) {
  TaskGraph tg;
  auto a = tg.AddNode("a", []() { return Status::OK(); });
  auto b = tg.AddNode("b", []() { return Status::OK(); });
  tg.AddEdge(a, b);
  tg.AddEdge(b, a);
  EXPECT_EQ(tg.Run(nullptr).code(), StatusCode::kInternal);
  ThreadPool pool(2);
  EXPECT_EQ(tg.Run(&pool).code(), StatusCode::kInternal);
}

TEST(TaskGraphTest, MalformedEdgeReturnsInternal) {
  TaskGraph tg;
  auto a = tg.AddNode("a", []() { return Status::OK(); });
  tg.AddEdge(a, a);  // self-edge is malformed
  EXPECT_EQ(tg.Run(nullptr).code(), StatusCode::kInternal);
}

// Node bodies fan morsels out on the same pool the graph runs on — the
// nesting the grounder's build nodes rely on. Must not deadlock and
// must cover every index exactly once.
TEST(TaskGraphTest, NodesNestParallelMorselsOnSamePool) {
  ThreadPool pool(2);
  constexpr size_t kN = 300;
  std::vector<std::atomic<int>> visits(2 * kN);
  for (auto& v : visits) v.store(0);
  TaskGraph tg;
  for (int node = 0; node < 2; ++node) {
    tg.AddNode("scan", [&pool, &visits, node]() {
      return ParallelMorsels(&pool, kN, 7, [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          visits[node * kN + i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
    });
  }
  ASSERT_TRUE(tg.Run(&pool).ok());
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "i=" << i;
  }
}

// Serial and pooled runs of the same graph compute the same result when
// each node reads only completed predecessors and writes only its own
// slot — the property the pipeline's differential tests lean on end to
// end. Each node's value is 1 + sum of its dependencies' values.
TEST(TaskGraphTest, SerialAndPoolProduceSameResult) {
  constexpr size_t kNodes = 16;
  auto run = [&](ThreadPool* pool) {
    std::vector<int64_t> slots(kNodes, 0);
    TaskGraph tg;
    std::vector<TaskGraph::NodeId> ids;
    for (size_t i = 0; i < kNodes; ++i) {
      ids.push_back(tg.AddNode("n", [&slots, i]() {
        int64_t v = 1;
        if (i >= 1) v += slots[i - 1];
        if (i >= 4) v += slots[i - 4];
        slots[i] = v;
        return Status::OK();
      }));
      if (i >= 1) tg.AddEdge(ids[i - 1], ids[i]);
      if (i >= 4) tg.AddEdge(ids[i - 4], ids[i]);
    }
    EXPECT_TRUE(tg.Run(pool).ok());
    return slots;
  };
  auto serial = run(nullptr);
  ThreadPool pool(4);
  auto pooled = run(&pool);
  EXPECT_EQ(serial, pooled);
}

TEST(TaskGraphTest, NodeSecondsAttributesTimeToTheNodeThatSpentIt) {
  TaskGraph tg;
  auto quick = tg.AddNode("quick", []() { return Status::OK(); });
  auto slow = tg.AddNode("slow", []() {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return Status::OK();
  });
  tg.AddEdge(quick, slow);
  ASSERT_TRUE(tg.Run(nullptr).ok());
  EXPECT_GE(tg.NodeSeconds(slow), 0.005);
  EXPECT_LT(tg.NodeSeconds(quick), tg.NodeSeconds(slow));
}

}  // namespace
}  // namespace dd
