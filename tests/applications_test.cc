// End-to-end quality gates for the genomics and ads applications (the
// spouse application is covered by pipeline_test.cc). Ensures every §6
// application in the repository actually reaches DeepDive-grade quality
// on its planted truth, not just the headline one.

#include <gtest/gtest.h>

#include "core/error_analysis.h"
#include "testdata/ads_app.h"
#include "testdata/genomics_app.h"

namespace dd {
namespace {

PipelineOptions FastOptions() {
  PipelineOptions options;
  options.learn.epochs = 200;
  options.learn.learning_rate = 0.05;
  options.inference.full_burn_in = 100;
  options.inference.num_samples = 400;
  options.strategy = PipelineOptions::Strategy::kSampling;
  return options;
}

TEST(GenomicsAppTest, EndToEndQuality) {
  GenomicsCorpusOptions corpus_options;
  corpus_options.num_abstracts = 200;
  corpus_options.seed = 71;
  GenomicsCorpus corpus = GenerateGenomicsCorpus(corpus_options);

  PipelineOptions options = FastOptions();
  options.learn.epochs = 250;
  options.threshold = 0.8;
  auto pipeline = MakeGenomicsPipeline(corpus, GenomicsAppOptions(), options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto extractions = (*pipeline)->Extractions("Association");
  ASSERT_TRUE(extractions.ok());
  auto metrics = Evaluate(*extractions, GenomicsTruthTuples(corpus));
  EXPECT_GT(metrics.precision, 0.85);
  EXPECT_GT(metrics.recall, 0.6);
  EXPECT_GT(metrics.f1, 0.75);
}

TEST(GenomicsAppTest, ClosureNegativesMatter) {
  GenomicsCorpusOptions corpus_options;
  corpus_options.num_abstracts = 120;
  corpus_options.seed = 72;
  GenomicsCorpus corpus = GenerateGenomicsCorpus(corpus_options);

  GenomicsAppOptions without;
  without.use_closure_negatives = false;
  PipelineOptions options = FastOptions();
  options.threshold = 0.8;

  auto with_pipeline = MakeGenomicsPipeline(corpus, GenomicsAppOptions(), options);
  auto without_pipeline = MakeGenomicsPipeline(corpus, without, options);
  ASSERT_TRUE(with_pipeline.ok() && without_pipeline.ok());
  ASSERT_TRUE((*with_pipeline)->Run().ok());
  ASSERT_TRUE((*without_pipeline)->Run().ok());

  auto truth = GenomicsTruthTuples(corpus);
  auto with_metrics = Evaluate(*(*with_pipeline)->Extractions("Association"), truth);
  auto without_metrics =
      Evaluate(*(*without_pipeline)->Extractions("Association"), truth);
  EXPECT_GT(with_metrics.precision, without_metrics.precision);
}

TEST(AdsAppTest, PriceExtractionAccuracy) {
  AdsCorpusOptions corpus_options;
  corpus_options.num_ads = 200;
  corpus_options.seed = 73;
  AdsCorpus corpus = GenerateAdsCorpus(corpus_options);

  PipelineOptions options = FastOptions();
  options.threshold = 0.8;
  auto pipeline = MakeAdsPipeline(corpus, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_TRUE((*pipeline)->Run().ok());

  auto best = BestPricePerAd(**pipeline, options.threshold);
  size_t correct = 0;
  for (const Ad& ad : corpus.ads) {
    auto it = best.find(ad.id);
    if (it != best.end() && it->second == ad.price) ++correct;
  }
  // The generator plants exactly one price per ad; nearly all should be
  // recovered exactly.
  EXPECT_GT(static_cast<double>(correct) / corpus.ads.size(), 0.9);
}

TEST(AdsAppTest, ImplausiblePricesSuppressed) {
  AdsCorpusOptions corpus_options;
  corpus_options.num_ads = 150;
  corpus_options.seed = 74;
  AdsCorpus corpus = GenerateAdsCorpus(corpus_options);
  PipelineOptions options = FastOptions();
  auto pipeline = MakeAdsPipeline(corpus, options);
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->Run().ok());
  // No extracted price is outside the supervised plausibility band.
  auto best = BestPricePerAd(**pipeline, 0.8);
  for (const auto& [ad, price] : best) {
    EXPECT_GE(price, 20);
    EXPECT_LE(price, 2000);
  }
}

}  // namespace
}  // namespace dd
