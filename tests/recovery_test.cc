#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/pipeline.h"
#include "core/udf.h"
#include "factor/io.h"
#include "inference/incremental.h"
#include "inference/learner.h"
#include "testdata/spouse_app.h"
#include "testdata/synthetic_graphs.h"
#include "util/crc32c.h"
#include "util/failpoint.h"

namespace dd {
namespace {

// ---- CRC32C -----------------------------------------------------------

TEST(Crc32cTest, KnownVector) {
  // The iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t chained = Crc32cExtend(0, data.data(), 10);
  chained = Crc32cExtend(chained, data.data() + 10, data.size() - 10);
  EXPECT_EQ(chained, Crc32c(data.data(), data.size()));
}

// ---- Exact double metadata round trip ---------------------------------

TEST(ExactDoubleTest, RoundTripsBitExactly) {
  for (double v : {0.0, 1.0, -1.0, 0.1, 3.14159265358979, -1e-300, 1e300,
                   0.05 * 0.99 * 0.99}) {
    auto parsed = ParseExactDouble(FormatExactDouble(v));
    ASSERT_TRUE(parsed.ok()) << FormatExactDouble(v);
    EXPECT_EQ(*parsed, v);
  }
  EXPECT_FALSE(ParseExactDouble("not a number").ok());
  EXPECT_FALSE(ParseExactDouble("1.5 trailing").ok());
}

// ---- Snapshot container -----------------------------------------------

TEST(SnapshotContainerTest, RoundTrip) {
  SnapshotWriter writer;
  writer.AddSection("AAAA", "first payload");
  writer.AddSection("BBBB", std::string("\x00\x01\x02", 3));
  auto reader = SnapshotReader::Parse(writer.Encode());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE(reader->Has("AAAA"));
  ASSERT_TRUE(reader->Section("AAAA").ok());
  EXPECT_EQ(*reader->Section("AAAA"), "first payload");
  EXPECT_EQ(reader->Section("BBBB")->size(), 3u);
  EXPECT_FALSE(reader->Has("CCCC"));
  EXPECT_FALSE(reader->Section("CCCC").ok());
}

GraphSnapshot MakeTestSnapshot(uint64_t seed) {
  SyntheticGraphOptions options;
  options.num_variables = 12;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.25;
  options.num_weights = 6;
  options.seed = seed;

  GraphSnapshot snap;
  snap.has_graph = true;
  snap.graph = MakeRandomGraph(options);
  snap.weights = {0.5, -1.25, 3.0, 0.0, 1e-12, -7.5};
  snap.chains = {{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1},
                 {0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}};
  snap.counts = {4, 0, 9, 2, 7, 1, 3, 8, 5, 6, 0, 9};
  snap.marginals = {0.1, 0.9, 0.5, 0.25, 0.75, 0.0,
                    1.0, 0.33, 0.66, 0.2, 0.8, 0.4};
  snap.rng_states = {{123, 456}, {789, 1011}};
  snap.meta["epoch"] = "17";
  snap.meta["lr"] = FormatExactDouble(0.05 * 0.99);
  return snap;
}

void ExpectSnapshotsEqual(const GraphSnapshot& a, const GraphSnapshot& b) {
  EXPECT_EQ(a.has_graph, b.has_graph);
  if (a.has_graph && b.has_graph) {
    EXPECT_EQ(SerializeGraph(a.graph), SerializeGraph(b.graph));
  }
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.chains, b.chains);
  EXPECT_EQ(a.counts, b.counts);
  EXPECT_EQ(a.marginals, b.marginals);
  ASSERT_EQ(a.rng_states.size(), b.rng_states.size());
  for (size_t i = 0; i < a.rng_states.size(); ++i) {
    EXPECT_EQ(a.rng_states[i].s0, b.rng_states[i].s0);
    EXPECT_EQ(a.rng_states[i].s1, b.rng_states[i].s1);
  }
  EXPECT_EQ(a.meta, b.meta);
}

TEST(GraphSnapshotTest, RoundTripBitExact) {
  GraphSnapshot snap = MakeTestSnapshot(3);
  auto decoded = DecodeGraphSnapshot(EncodeGraphSnapshot(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSnapshotsEqual(snap, *decoded);
}

// ---- Corruption sweeps -------------------------------------------------
//
// The recovery invariant: a damaged snapshot either decodes bit-exactly
// (impossible here — every mutation changes bytes under CRC) or fails
// with Corruption. It must never crash, loop, or silently succeed.

class CorruptionSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionSweepTest, TruncationAtEveryByteIsCorruption) {
  std::string bytes = EncodeGraphSnapshot(MakeTestSnapshot(GetParam()));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto decoded = DecodeGraphSnapshot(bytes.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "truncation at " << cut << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "truncation at " << cut << ": " << decoded.status().ToString();
  }
}

TEST_P(CorruptionSweepTest, BitFlipAtEveryByteIsCorruption) {
  const std::string bytes = EncodeGraphSnapshot(MakeTestSnapshot(GetParam()));
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ (1 << (i % 8)));
    auto decoded = DecodeGraphSnapshot(flipped);
    ASSERT_FALSE(decoded.ok()) << "bit flip at byte " << i << " accepted";
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption)
        << "bit flip at byte " << i << ": " << decoded.status().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweepTest, ::testing::Values(1, 2, 7));

// ---- File-level durability --------------------------------------------

class RecoveryFileTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }

  std::string TempPath(const std::string& name) {
    std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }
};

TEST_F(RecoveryFileTest, WriteReadRoundTrip) {
  std::string path = TempPath("snap_roundtrip.snap");
  GraphSnapshot snap = MakeTestSnapshot(4);
  ASSERT_TRUE(WriteGraphSnapshot(snap, path).ok());
  auto loaded = ReadGraphSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSnapshotsEqual(snap, *loaded);
  // No temp file left behind.
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST_F(RecoveryFileTest, MissingFileIsError) {
  EXPECT_FALSE(ReadGraphSnapshot(TempPath("never_written.snap")).ok());
}

TEST_F(RecoveryFileTest, TruncatedFileIsCorruption) {
  std::string path = TempPath("snap_truncated.snap");
  std::string bytes = EncodeGraphSnapshot(MakeTestSnapshot(5));
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
  std::fclose(f);
  auto loaded = ReadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(RecoveryFileTest, ShortWriteFailpointYieldsDetectablyTornFile) {
  std::string path = TempPath("snap_torn.snap");
  ASSERT_TRUE(Failpoints::Instance()
                  .Configure("factor_io.write=short_write(keep=0.5,hits=1)")
                  .ok());
  // The simulated half-persisted buffer reaches disk...
  ASSERT_TRUE(WriteGraphSnapshot(MakeTestSnapshot(6), path).ok());
  Failpoints::Instance().Reset();
  // ...and the reader refuses it instead of crashing.
  auto loaded = ReadGraphSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(RecoveryFileTest, RenameFailpointLeavesNoFile) {
  std::string path = TempPath("snap_rename_fail.snap");
  ASSERT_TRUE(
      Failpoints::Instance().Configure("factor_io.rename=ioerror(hits=1)").ok());
  Status status = WriteGraphSnapshot(MakeTestSnapshot(6), path);
  Failpoints::Instance().Reset();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

// ---- Run directory / manifest -----------------------------------------

TEST_F(RecoveryFileTest, RunDirectoryManifestRoundTrip) {
  RunDirectory dir(::testing::TempDir() + "run_dir_test");
  ASSERT_TRUE(dir.Create().ok());
  ASSERT_TRUE(dir.Create().ok());  // idempotent
  ASSERT_TRUE(dir.Clear().ok());
  EXPECT_FALSE(dir.HasManifest());
  ASSERT_TRUE(dir.WriteManifest({{"graph_crc", "42"}, {"phase", "learned"}}).ok());
  ASSERT_TRUE(dir.HasManifest());
  auto manifest = dir.ReadManifest();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ((*manifest)["graph_crc"], "42");
  EXPECT_EQ((*manifest)["phase"], "learned");
  ASSERT_TRUE(dir.Clear().ok());
  EXPECT_FALSE(dir.HasManifest());
}

// ---- Learner: divergence + resume -------------------------------------

FactorGraph MakeLearnGraph() {
  SyntheticGraphOptions options;
  options.num_variables = 24;
  options.factors_per_variable = 2.5;
  options.evidence_fraction = 0.4;
  options.num_weights = 8;
  options.seed = 5;
  return MakeRandomGraph(options);
}

TEST(LearnerDivergenceTest, ExplodingStepSizeIsReported) {
  FactorGraph graph = MakeLearnGraph();
  LearnOptions options;
  options.epochs = 50;
  options.learning_rate = 1e300;  // guaranteed overflow on any gradient
  options.seed = 77;
  Status status = Learner(&graph).Learn(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("diverged"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("weight"), std::string::npos);
}

class LearnerResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(LearnerResumeTest, InterruptedRunResumesBitIdentically) {
  LearnOptions options;
  options.epochs = 40;
  options.seed = 99;
  options.checkpoint_interval = 7;

  // Reference: uninterrupted, no durability.
  FactorGraph reference = MakeLearnGraph();
  ASSERT_TRUE(Learner(&reference).Learn(options).ok());

  std::string dir = ::testing::TempDir() + "learner_resume";
  ASSERT_TRUE(RunDirectory(dir).Create().ok());
  ASSERT_TRUE(RunDirectory(dir).Clear().ok());
  LearnOptions durable = options;
  durable.checkpoint_dir = dir;

  // Interrupted run: epochs 0..22 execute, epoch 23 dies.
  ASSERT_TRUE(
      Failpoints::Instance().Configure("learner.epoch=error(skip=23)").ok());
  FactorGraph interrupted = MakeLearnGraph();
  Status status = Learner(&interrupted).Learn(durable);
  Failpoints::Instance().Reset();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);

  // "Process restart": a fresh graph + learner resume from the last
  // checkpoint (epoch 21) and finish.
  FactorGraph resumed = MakeLearnGraph();
  Learner learner(&resumed);
  ASSERT_TRUE(learner.Learn(durable).ok());
  EXPECT_EQ(learner.resumed_from_epoch(), 21);

  ASSERT_EQ(resumed.num_weights(), reference.num_weights());
  for (uint32_t w = 0; w < reference.num_weights(); ++w) {
    EXPECT_EQ(resumed.weight_value(w), reference.weight_value(w))
        << "weight " << w << " differs after resume";
  }
}

// ---- Incremental inference: materialization resume --------------------

class InferenceResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(InferenceResumeTest, SamplingMaterializationResumesBitIdentically) {
  FactorGraph graph = MakeLearnGraph();
  IncrementalOptions options;
  options.full_burn_in = 50;
  options.num_samples = 100;
  options.seed = 31;
  options.checkpoint_interval = 20;

  IncrementalInference reference(&graph, MaterializationStrategy::kSampling,
                                 options);
  ASSERT_TRUE(reference.Materialize().ok());

  std::string path = ::testing::TempDir() + "sampling_resume.snap";
  std::remove(path.c_str());
  IncrementalOptions durable = options;
  durable.checkpoint_path = path;

  // Die at sweep 70 (after the checkpoint at sweep 60).
  ASSERT_TRUE(
      Failpoints::Instance().Configure("inference.sweep=error(skip=70)").ok());
  IncrementalInference interrupted(&graph, MaterializationStrategy::kSampling,
                                   durable);
  ASSERT_FALSE(interrupted.Materialize().ok());
  Failpoints::Instance().Reset();

  IncrementalInference resumed(&graph, MaterializationStrategy::kSampling,
                               durable);
  ASSERT_TRUE(resumed.Materialize().ok());

  ASSERT_EQ(resumed.marginals().size(), reference.marginals().size());
  for (size_t v = 0; v < reference.marginals().size(); ++v) {
    EXPECT_EQ(resumed.marginals()[v], reference.marginals()[v])
        << "marginal " << v << " differs after resume";
  }
  std::remove(path.c_str());
}

TEST_F(InferenceResumeTest, VariationalCheckpointIsReused) {
  FactorGraph graph = MakeLearnGraph();
  IncrementalOptions options;
  options.checkpoint_path = ::testing::TempDir() + "variational.snap";
  std::remove(options.checkpoint_path.c_str());

  IncrementalInference first(&graph, MaterializationStrategy::kVariational,
                             options);
  ASSERT_TRUE(first.Materialize().ok());
  EXPECT_GT(first.last_work_units(), 0u);

  IncrementalInference second(&graph, MaterializationStrategy::kVariational,
                              options);
  ASSERT_TRUE(second.Materialize().ok());
  EXPECT_EQ(second.last_work_units(), 0u);  // loaded, not recomputed
  EXPECT_EQ(second.marginals(), first.marginals());
  std::remove(options.checkpoint_path.c_str());
}

// ---- Extractor quarantine ---------------------------------------------

constexpr char kTinyProgram[] = "T(x: int).\nQ?(x: int).\nQ(x) :- T(x).";

class QuarantineTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().Reset(); }
};

TEST_F(QuarantineTest, FlakyExtractorIsRetriedOnce) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram(kTinyProgram).ok());
  auto failures = std::make_shared<int>(0);
  pipeline.RegisterExtractor(
      [failures](const Document& doc, TupleEmitter* emitter) -> Status {
        if (doc.id == "flaky" && (*failures)++ == 0) {
          return Status::Internal("transient failure");
        }
        emitter->Emit("T", Tuple({Value::Int(1)}));
        return Status::OK();
      });
  ASSERT_TRUE(pipeline.AddDocument("ok", "text").ok());
  ASSERT_TRUE(pipeline.AddDocument("flaky", "text").ok());
  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(pipeline.run_stats().documents_processed, 2u);
  EXPECT_EQ(pipeline.run_stats().extractor_retries, 1u);
  EXPECT_EQ(pipeline.run_stats().documents_quarantined, 0u);
}

TEST_F(QuarantineTest, PersistentFailureIsQuarantinedAndReported) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram(kTinyProgram).ok());
  pipeline.RegisterExtractor(
      [](const Document& doc, TupleEmitter* emitter) -> Status {
        if (doc.id == "bad") return Status::Internal("udf bug");
        emitter->Emit("T", Tuple({Value::Int(doc.id == "a" ? 1 : 2)}));
        return Status::OK();
      });
  ASSERT_TRUE(pipeline.AddDocument("a", "text").ok());
  ASSERT_TRUE(pipeline.AddDocument("bad", "text").ok());
  ASSERT_TRUE(pipeline.AddDocument("c", "text").ok());
  ASSERT_TRUE(pipeline.Run().ok());  // 1/3 quarantined is below the threshold

  const RunStats& stats = pipeline.run_stats();
  EXPECT_EQ(stats.documents_processed, 2u);
  EXPECT_EQ(stats.documents_quarantined, 1u);
  ASSERT_EQ(stats.quarantined.size(), 1u);
  EXPECT_EQ(stats.quarantined[0].document_id, "bad");
  EXPECT_EQ(stats.quarantined[0].error.code(), StatusCode::kInternal);

  std::string summary = pipeline.RunSummary();
  EXPECT_NE(summary.find("quarantined 'bad'"), std::string::npos) << summary;
  EXPECT_NE(summary.find("udf bug"), std::string::npos) << summary;
}

TEST_F(QuarantineTest, MajorityFailureFailsTheRun) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram(kTinyProgram).ok());
  pipeline.RegisterExtractor(
      [](const Document&, TupleEmitter*) -> Status {
        return Status::Internal("systematically broken");
      });
  ASSERT_TRUE(pipeline.AddDocument("a", "text").ok());
  ASSERT_TRUE(pipeline.AddDocument("b", "text").ok());
  Status status = pipeline.Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("systematically broken"), std::string::npos);
}

TEST_F(QuarantineTest, ExtractorFailpointDrivesRetry) {
  ASSERT_TRUE(
      Failpoints::Instance().Configure("pipeline.extractor=error(hits=1)").ok());
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram(kTinyProgram).ok());
  pipeline.RegisterExtractor(
      [](const Document&, TupleEmitter* emitter) -> Status {
        emitter->Emit("T", Tuple({Value::Int(1)}));
        return Status::OK();
      });
  ASSERT_TRUE(pipeline.AddDocument("a", "text").ok());
  ASSERT_TRUE(pipeline.Run().ok());  // injected failure absorbed by the retry
  EXPECT_EQ(pipeline.run_stats().extractor_retries, 1u);
  EXPECT_EQ(pipeline.run_stats().documents_quarantined, 0u);
}

// ---- UDF error messages -----------------------------------------------

TEST(UdfMessageTest, NotFoundNamesUdfAndArity) {
  UdfRegistry registry;
  auto missing = registry.Call("phrase", {Value::Int(1), Value::Int(2)});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("phrase"), std::string::npos);
  EXPECT_NE(missing.status().message().find("2 args"), std::string::npos);
}

TEST(UdfMessageTest, UdfErrorsAreWrappedWithNameAndArity) {
  UdfRegistry registry;
  auto bad_arity = registry.Call("identity", {});
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_arity.status().message().find("UDF 'identity' (0 args)"),
            std::string::npos)
      << bad_arity.status().ToString();
}

// ---- Pipeline: kill-and-resume ----------------------------------------

PipelineOptions RecoveryPipelineOptions() {
  PipelineOptions options;
  options.learn.epochs = 60;
  options.learn.learning_rate = 0.05;
  options.learn.checkpoint_interval = 10;
  options.inference.full_burn_in = 60;
  options.inference.num_samples = 200;
  options.inference.checkpoint_interval = 50;
  options.threshold = 0.7;
  options.strategy = PipelineOptions::Strategy::kSampling;
  return options;
}

SpouseCorpus RecoveryCorpus() {
  SpouseCorpusOptions corpus_opts;
  corpus_opts.num_documents = 30;
  corpus_opts.seed = 21;
  return GenerateSpouseCorpus(corpus_opts);
}

TEST(PipelineRecoveryDeathTest, KillAndResumeIsBitIdentical) {
  SpouseCorpus corpus = RecoveryCorpus();
  PipelineOptions options = RecoveryPipelineOptions();

  // Reference: uninterrupted run, no durability.
  auto reference = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE((*reference)->Run().ok());
  auto ref_marginals = (*reference)->Marginals("MarriedMention");
  ASSERT_TRUE(ref_marginals.ok());
  ASSERT_FALSE(ref_marginals->empty());

  std::string dir = ::testing::TempDir() + "pipeline_kill";
  ASSERT_TRUE(RunDirectory(dir).Create().ok());
  ASSERT_TRUE(RunDirectory(dir).Clear().ok());

  // Child process: same pipeline with a run directory, killed abruptly
  // mid-learning by the crash failpoint. _Exit(42) models kill -9 while
  // keeping the exit observable.
  EXPECT_EXIT(
      {
        ASSERT_TRUE(Failpoints::Instance()
                        .Configure("learner.epoch=crash(skip=35)")
                        .ok());
        auto victim = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
        ASSERT_TRUE(victim.ok());
        ASSERT_TRUE((*victim)->SetRunDirectory(dir).ok());
        (void)(*victim)->Run();  // never returns: dies at epoch 35
        std::_Exit(1);
      },
      ::testing::ExitedWithCode(kFailpointCrashExitCode), "crash injected");

  // Parent: rebuild the same pipeline, resume, finish.
  auto resumed = MakeSpousePipeline(corpus, SpouseAppOptions(), options);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->ResumeFrom(dir).ok());
  ASSERT_TRUE((*resumed)->Run().ok()) << (*resumed)->RunSummary();

  auto res_marginals = (*resumed)->Marginals("MarriedMention");
  ASSERT_TRUE(res_marginals.ok());
  ASSERT_EQ(res_marginals->size(), ref_marginals->size());
  for (size_t i = 0; i < ref_marginals->size(); ++i) {
    EXPECT_EQ((*res_marginals)[i].second, (*ref_marginals)[i].second)
        << "marginal " << i << " differs after kill + resume";
  }
}

TEST(PipelineRecoveryTest, ResumeFromForeignRunDirectoryIsRejected) {
  SpouseCorpus corpus = RecoveryCorpus();
  std::string dir = ::testing::TempDir() + "foreign_run";
  ASSERT_TRUE(RunDirectory(dir).Create().ok());
  ASSERT_TRUE(RunDirectory(dir).Clear().ok());
  // A manifest from some other pipeline's graph.
  ASSERT_TRUE(RunDirectory(dir)
                  .WriteManifest({{"graph_crc", "12345"}, {"phase", "learned"}})
                  .ok());

  auto pipeline =
      MakeSpousePipeline(corpus, SpouseAppOptions(), RecoveryPipelineOptions());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_TRUE((*pipeline)->ResumeFrom(dir).ok());
  Status status = (*pipeline)->Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("different pipeline"), std::string::npos);
}

}  // namespace
}  // namespace dd
