#include <gtest/gtest.h>

#include <cmath>

#include "inference/exact.h"
#include "inference/incremental.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

double MaxDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double out = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) out = std::max(out, std::fabs(a[i] - b[i]));
  return out;
}

/// Small base graph plus a two-variable extension, exactly checkable.
struct VersionedGraphs {
  FactorGraph base;
  FactorGraph extended;
  std::vector<uint32_t> changed;

  explicit VersionedGraphs(uint64_t seed) {
    SyntheticGraphOptions options;
    options.num_variables = 12;
    options.factors_per_variable = 1.5;
    options.evidence_fraction = 0.0;
    options.seed = seed;
    base = MakeRandomGraph(options);
    extended = ExtendGraph(base, 2, 1.0, seed + 1, &changed);
  }
};

class IncrementalStrategyTest
    : public ::testing::TestWithParam<MaterializationStrategy> {};

TEST_P(IncrementalStrategyTest, UpdateTracksExactMarginals) {
  VersionedGraphs graphs(101);
  IncrementalOptions options;
  options.full_burn_in = 500;
  options.num_samples = 20000;
  options.update_burn_in = 500;
  options.mf_max_iterations = 300;
  options.mf_tolerance = 1e-7;
  options.mf_damping = 0.3;

  IncrementalInference engine(&graphs.base, GetParam(), options);
  ASSERT_TRUE(engine.Materialize().ok());
  auto exact_base = ExactMarginals(graphs.base);
  ASSERT_TRUE(exact_base.ok());
  double tolerance =
      GetParam() == MaterializationStrategy::kSampling ? 0.03 : 0.15;
  EXPECT_LT(MaxDiff(*exact_base, engine.marginals()), tolerance);

  auto updated = engine.Update(&graphs.extended, graphs.changed);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  auto exact_extended = ExactMarginals(graphs.extended);
  ASSERT_TRUE(exact_extended.ok());
  EXPECT_LT(MaxDiff(*exact_extended, *updated), tolerance);
  EXPECT_GT(engine.last_work_units(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, IncrementalStrategyTest,
                         ::testing::Values(MaterializationStrategy::kSampling,
                                           MaterializationStrategy::kVariational));

TEST(IncrementalInferenceTest, UpdateBeforeMaterializeFails) {
  VersionedGraphs graphs(102);
  IncrementalOptions options;
  IncrementalInference engine(&graphs.base, MaterializationStrategy::kSampling,
                              options);
  auto result = engine.Update(&graphs.extended, graphs.changed);
  EXPECT_FALSE(result.ok());
}

TEST(IncrementalInferenceTest, ShrinkingGraphRejected) {
  VersionedGraphs graphs(103);
  IncrementalOptions options;
  options.num_samples = 50;
  options.full_burn_in = 10;
  IncrementalInference engine(&graphs.extended, MaterializationStrategy::kSampling,
                              options);
  ASSERT_TRUE(engine.Materialize().ok());
  auto result = engine.Update(&graphs.base, {});
  EXPECT_FALSE(result.ok());
}

TEST(IncrementalInferenceTest, VariationalUpdateIsLocalized) {
  // A large sparse graph: updating 2 variables must touch far fewer
  // variables than a full relaxation.
  SyntheticGraphOptions options;
  options.num_variables = 5000;
  options.factors_per_variable = 1.0;
  options.evidence_fraction = 0.0;
  options.seed = 104;
  FactorGraph base = MakeRandomGraph(options);
  std::vector<uint32_t> changed;
  FactorGraph extended = ExtendGraph(base, 2, 1.0, 105, &changed);

  IncrementalOptions inc_options;
  inc_options.mf_tolerance = 1e-3;
  inc_options.mf_damping = 0.2;
  IncrementalInference engine(&base, MaterializationStrategy::kVariational,
                              inc_options);
  ASSERT_TRUE(engine.Materialize().ok());
  uint64_t full_work = engine.last_work_units();

  auto updated = engine.Update(&extended, changed);
  ASSERT_TRUE(updated.ok());
  EXPECT_LT(engine.last_work_units(), full_work / 10)
      << "warm-started update should be far cheaper than materialization";
}

TEST(ChooseStrategyTest, OptimizerRules) {
  // Dense graphs -> sampling regardless of changes.
  EXPECT_EQ(ChooseStrategy(100000, 10.0, 100), MaterializationStrategy::kSampling);
  // Few anticipated changes -> sampling.
  EXPECT_EQ(ChooseStrategy(100000, 2.0, 1), MaterializationStrategy::kSampling);
  // Tiny graphs -> sampling.
  EXPECT_EQ(ChooseStrategy(100, 2.0, 100), MaterializationStrategy::kSampling);
  // Large, sparse, many changes -> variational.
  EXPECT_EQ(ChooseStrategy(100000, 2.0, 50), MaterializationStrategy::kVariational);
}

TEST(StrategyNameTest, Names) {
  EXPECT_STREQ(StrategyName(MaterializationStrategy::kSampling), "sampling");
  EXPECT_STREQ(StrategyName(MaterializationStrategy::kVariational), "variational");
}

}  // namespace
}  // namespace dd
