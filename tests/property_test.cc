// Property and fuzz tests across modules: NLP robustness on adversarial
// byte soup, mean-field vs exact sweeps, learner planted-weight
// recovery, and end-to-end failure injection.

#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.h"
#include "inference/exact.h"
#include "inference/gibbs.h"
#include "inference/learner.h"
#include "inference/meanfield.h"
#include "nlp/document.h"
#include "nlp/html.h"
#include "testdata/synthetic_graphs.h"
#include "util/rng.h"

namespace dd {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->NextBounded(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += static_cast<char>(rng->NextBounded(256));
  }
  return out;
}

class NlpFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NlpFuzzTest, AnnotateNeverCrashesAndOffsetsAreValid) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomBytes(&rng, 300);
    for (bool html : {false, true}) {
      Document doc = AnnotateDocument("fuzz", text, html);
      for (const Sentence& sentence : doc.sentences) {
        for (const Token& token : sentence.tokens) {
          ASSERT_LE(token.begin, token.end);
          ASSERT_LE(token.end, doc.text.size());
          ASSERT_EQ(doc.text.substr(token.begin, token.end - token.begin),
                    token.text);
          ASSERT_FALSE(token.pos.empty());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NlpFuzzTest, ::testing::Values(1, 2, 3, 4));

TEST(NlpFuzzTest, HtmlSoup) {
  Rng rng(99);
  const char* fragments[] = {"<", ">", "</", "<script>", "&amp", "&", "\"",
                             "<p", "word", " ", "\n", "<style>", "=x>"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    int pieces = 1 + static_cast<int>(rng.NextBounded(30));
    for (int i = 0; i < pieces; ++i) {
      soup += fragments[rng.NextBounded(13)];
    }
    std::string stripped = StripHtml(soup);  // must not crash or hang
    EXPECT_LE(stripped.size(), soup.size() + pieces);
  }
}

// Mean-field tracks exact marginals on random weakly-coupled graphs; the
// error grows with coupling strength but stays bounded.
struct MeanFieldParam {
  uint64_t seed;
  double weight_scale;
  double tolerance;
};

class MeanFieldSweepTest : public ::testing::TestWithParam<MeanFieldParam> {};

TEST_P(MeanFieldSweepTest, TracksExact) {
  const auto p = GetParam();
  SyntheticGraphOptions options;
  options.num_variables = 12;
  options.factors_per_variable = 1.2;
  options.evidence_fraction = 0.1;
  options.weight_scale = p.weight_scale;
  options.seed = p.seed;
  FactorGraph graph = MakeRandomGraph(options);

  auto exact = ExactMarginals(graph);
  ASSERT_TRUE(exact.ok());
  MeanFieldOptions mf_options;
  mf_options.damping = 0.3;
  mf_options.tolerance = 1e-8;
  mf_options.max_iterations = 500;
  MeanFieldEngine engine(&graph, mf_options);
  auto mu = engine.Run();
  ASSERT_TRUE(mu.ok());
  double max_err = 0;
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (graph.is_evidence(v)) continue;
    max_err = std::max(max_err, std::fabs((*exact)[v] - (*mu)[v]));
  }
  EXPECT_LT(max_err, p.tolerance) << "seed " << p.seed;
}

INSTANTIATE_TEST_SUITE_P(
    CouplingSweep, MeanFieldSweepTest,
    ::testing::Values(MeanFieldParam{1, 0.3, 0.05}, MeanFieldParam{2, 0.3, 0.05},
                      MeanFieldParam{3, 0.8, 0.12}, MeanFieldParam{4, 0.8, 0.12},
                      MeanFieldParam{5, 1.5, 0.25}, MeanFieldParam{6, 1.5, 0.25}));

// The learner recovers planted classification weights well enough to
// rank: features planted strongly positive must end up with higher
// learned weight than features planted strongly negative.
class LearnerRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LearnerRecoveryTest, RecoversWeightOrdering) {
  uint64_t seed = GetParam();
  // Re-derive the planted weights the generator used.
  Rng rng(seed);
  const size_t num_features = 12;
  std::vector<double> planted(num_features);
  for (size_t f = 0; f < num_features; ++f) planted[f] = rng.NextGaussian() * 1.5;

  FactorGraph graph = MakeClassificationGraph(600, num_features, 4, seed);
  Learner learner(&graph);
  LearnOptions options;
  options.epochs = 400;
  options.learning_rate = 0.05;
  options.decay = 0.997;
  options.l2 = 0.002;
  options.seed = seed + 1;
  ASSERT_TRUE(learner.Learn(options).ok());

  // Spearman-style check: strong positive vs strong negative features.
  for (size_t i = 0; i < num_features; ++i) {
    for (size_t j = 0; j < num_features; ++j) {
      if (planted[i] > planted[j] + 1.5) {
        EXPECT_GT(graph.weight(static_cast<uint32_t>(i)).value,
                  graph.weight(static_cast<uint32_t>(j)).value)
            << "planted " << planted[i] << " vs " << planted[j];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerRecoveryTest, ::testing::Values(11, 12, 13));

// Failure injection: the pipeline surfaces errors as Status, never dies.
TEST(FailureInjectionTest, MalformedProgram) {
  DeepDivePipeline pipeline;
  EXPECT_EQ(pipeline.LoadProgram("This is not DDlog").code(),
            StatusCode::kParseError);
  EXPECT_FALSE(pipeline.LoadProgram("Q(x) :- Undeclared(x).").ok());
}

TEST(FailureInjectionTest, ExtractorEmitsGarbage) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram("T(x: int).\nQ?(x: int).\nQ(x) :- T(x).").ok());
  pipeline.RegisterExtractor([](const Document&, TupleEmitter* emitter) -> Status {
    emitter->Emit("T", Tuple({Value::String("wrong type")}));
    return Status::OK();
  });
  ASSERT_TRUE(pipeline.AddDocument("d", "text").ok());
  Status status = pipeline.Run();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTypeError);
}

TEST(FailureInjectionTest, ExtractorIntoUndeclaredRelation) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram("T(x: int).\nQ?(x: int).\nQ(x) :- T(x).").ok());
  pipeline.RegisterExtractor([](const Document&, TupleEmitter* emitter) -> Status {
    emitter->Emit("Nowhere", Tuple({Value::Int(1)}));
    return Status::OK();
  });
  ASSERT_TRUE(pipeline.AddDocument("d", "text").ok());
  EXPECT_EQ(pipeline.Run().code(), StatusCode::kNotFound);
}

TEST(FailureInjectionTest, ExtractorReportsItsOwnError) {
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram("T(x: int).\nQ?(x: int).\nQ(x) :- T(x).").ok());
  pipeline.RegisterExtractor([](const Document&, TupleEmitter*) -> Status {
    return Status::Internal("extractor exploded");
  });
  ASSERT_TRUE(pipeline.AddDocument("d", "text").ok());
  Status status = pipeline.Run();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("exploded"), std::string::npos);
}

TEST(FailureInjectionTest, EmptyCorpusStillRuns) {
  // No documents at all: the pipeline grounds an empty graph and succeeds
  // with zero extractions (not an error — an empty corpus is valid input).
  DeepDivePipeline pipeline;
  ASSERT_TRUE(pipeline.LoadProgram("T(x: int).\nQ?(x: int).\nQ(x) :- T(x).").ok());
  ASSERT_TRUE(pipeline.Run().ok());
  auto extractions = pipeline.Extractions("Q");
  ASSERT_TRUE(extractions.ok());
  EXPECT_TRUE(extractions->empty());
}

// Gibbs chain invariance: marginal estimates from two disjoint halves of
// one long chain agree (stationarity check).
TEST(GibbsStationarityTest, HalvesAgree) {
  SyntheticGraphOptions options;
  options.num_variables = 30;
  options.factors_per_variable = 2.0;
  options.seed = 21;
  FactorGraph graph = MakeRandomGraph(options);

  GibbsOptions gibbs;
  gibbs.burn_in = 1000;
  gibbs.num_samples = 15000;
  gibbs.seed = 5;
  GibbsSampler first(&graph, gibbs);
  auto m1 = first.RunMarginals();
  gibbs.burn_in = 16000;  // = first run's total: the "second half"
  GibbsSampler second(&graph, gibbs);
  auto m2 = second.RunMarginals();
  ASSERT_TRUE(m1.ok() && m2.ok());
  for (uint32_t v = 0; v < graph.num_variables(); ++v) {
    if (graph.is_evidence(v)) continue;
    EXPECT_NEAR((*m1)[v], (*m2)[v], 0.06);
  }
}

}  // namespace
}  // namespace dd
