#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "factor/io.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "storage/tsv.h"
#include "testdata/synthetic_graphs.h"

namespace dd {
namespace {

// Little-endian append helpers for hand-crafting section contents.
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void Pad8(std::string* out) {
  while (out->size() & 7) out->push_back('\0');
}

/// Wrap (tag, content) pairs as a valid DDSN container with alignment
/// pads — CRCs are correct, so only *semantic* validation can reject it.
std::string BuildContainer(
    const std::vector<std::pair<std::string, std::string>>& sections) {
  SnapshotWriter writer;
  SectionLayout layout;
  for (const auto& [tag, content] : sections) {
    std::string payload = WithAlignmentPad(layout.NextPayloadOffset(), content);
    layout.Add(payload.size());
    writer.AddSection(tag, payload);
  }
  return writer.Encode();
}

std::string EncodeDict(const std::vector<std::string>& strings) {
  std::string out;
  uint64_t blob_len = 0;
  for (const auto& s : strings) blob_len += s.size();
  PutU64(&out, strings.size());
  PutU64(&out, blob_len);
  uint32_t off = 0;
  for (const auto& s : strings) {
    PutU32(&out, off);
    off += static_cast<uint32_t>(s.size());
  }
  PutU32(&out, off);
  Pad8(&out);
  for (const auto& s : strings) out += s;
  return out;
}

// ---- Alignment padding --------------------------------------------------

TEST(AlignmentPadTest, RoundTripsAtEveryOffset) {
  const std::string content = "12345";
  for (size_t off = 0; off < 32; ++off) {
    std::string payload = WithAlignmentPad(off, content);
    // The content must land on an 8-aligned file offset.
    size_t pad = static_cast<uint8_t>(payload[0]);
    EXPECT_EQ((off + 1 + pad) % 8, 0u) << "offset " << off;
    auto stripped = StripAlignmentPad(off, payload);
    ASSERT_TRUE(stripped.ok()) << stripped.status().ToString();
    EXPECT_EQ(*stripped, content);
    // The same payload at a different (non-congruent) offset is rejected.
    auto wrong = StripAlignmentPad(off + 1, payload);
    EXPECT_FALSE(wrong.ok());
  }
}

TEST(AlignmentPadTest, RejectsNonzeroPadBytes) {
  std::string payload = WithAlignmentPad(20, "data");
  ASSERT_GT(static_cast<uint8_t>(payload[0]), 0u);
  payload[1] = 'x';
  auto stripped = StripAlignmentPad(20, payload);
  EXPECT_FALSE(stripped.ok());
  EXPECT_EQ(stripped.status().code(), StatusCode::kCorruption);
}

// ---- String pool --------------------------------------------------------

TEST(StringPoolTest, DedupsAndRoundTrips) {
  StringPoolBuilder builder;
  EXPECT_EQ(builder.IdFor("alpha"), 0u);
  EXPECT_EQ(builder.IdFor("beta"), 1u);
  EXPECT_EQ(builder.IdFor("alpha"), 0u);
  EXPECT_EQ(builder.IdFor(""), 2u);
  EXPECT_EQ(builder.size(), 3u);

  std::string content = builder.EncodeContent();
  auto pool = StringPoolView::Parse(content);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_EQ(pool->size(), 3u);
  EXPECT_EQ(pool->String(0), "alpha");
  EXPECT_EQ(pool->String(1), "beta");
  EXPECT_EQ(pool->String(2), "");
}

TEST(StringPoolTest, EmptyPoolRoundTrips) {
  StringPoolBuilder builder;
  // The view borrows the content bytes, so they must outlive it.
  std::string content = builder.EncodeContent();
  auto pool = StringPoolView::Parse(content);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool->size(), 0u);
}

TEST(StringPoolTest, ManyStringsSurviveGrowth) {
  StringPoolBuilder builder;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(builder.IdFor("str-" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(builder.IdFor("str-" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  std::string content = builder.EncodeContent();
  auto pool = StringPoolView::Parse(content);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool->size(), 500u);
  EXPECT_EQ(pool->String(499), "str-499");
}

TEST(StringPoolTest, MalformedContentRejected) {
  // Non-monotone offsets.
  {
    std::string bad;
    PutU64(&bad, 2);  // count
    PutU64(&bad, 4);  // blob_len
    PutU32(&bad, 0);
    PutU32(&bad, 3);
    PutU32(&bad, 2);  // final < previous
    Pad8(&bad);
    bad += "abcd";
    // Final offset also wrong; either defect must reject.
    EXPECT_FALSE(StringPoolView::Parse(bad).ok());
  }
  // Final offset != blob length.
  {
    std::string bad;
    PutU64(&bad, 1);
    PutU64(&bad, 4);
    PutU32(&bad, 0);
    PutU32(&bad, 3);
    Pad8(&bad);
    bad += "abcd";
    EXPECT_FALSE(StringPoolView::Parse(bad).ok());
  }
  // Truncated blob.
  {
    std::string bad;
    PutU64(&bad, 1);
    PutU64(&bad, 100);
    PutU32(&bad, 0);
    PutU32(&bad, 100);
    Pad8(&bad);
    bad += "abcd";
    EXPECT_FALSE(StringPoolView::Parse(bad).ok());
  }
}

// ---- Catalog snapshot ---------------------------------------------------

void FillTestCatalog(Catalog* catalog_out) {
  Catalog& catalog = *catalog_out;
  Table* people = *catalog.CreateTable(
      "people", Schema({{"name", ValueType::kString},
                        {"age", ValueType::kInt},
                        {"score", ValueType::kDouble},
                        {"active", ValueType::kBool}}));
  auto insert = [&](Table* t, std::vector<Value> vs) {
    auto r = t->Insert(Tuple(std::move(vs)));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };
  insert(people, {Value::String("ann"), Value::Int(34), Value::Double(0.5),
                  Value::Bool(true)});
  insert(people, {Value::String("bob"), Value::Int(-7), Value::Null(),
                  Value::Bool(false)});
  insert(people, {Value::String(""), Value::Int(0),
                  Value::Double(-0.0), Value::Null()});
  insert(people, {Value::String("tab\tand\nnewline"), Value::Int(1L << 40),
                  Value::Double(std::nan("")), Value::Bool(true)});
  // Tombstone row 1: row ids must survive the save/load cycle.
  EXPECT_TRUE(people->Erase(Tuple({Value::String("bob"), Value::Int(-7),
                                   Value::Null(), Value::Bool(false)})));

  Table* edges = *catalog.CreateTable(
      "edges", Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}}));
  for (int i = 0; i < 100; ++i) {
    insert(edges, {Value::Int(i), Value::Int((i * 7) % 100)});
  }
}

void ExpectCatalogsEqual(const Catalog& a, const Catalog& b) {
  ASSERT_EQ(a.TableNames(), b.TableNames());
  for (const std::string& name : a.TableNames()) {
    const Table* ta = *a.GetTable(name);
    const Table* tb = *b.GetTable(name);
    EXPECT_EQ(ta->schema(), tb->schema()) << name;
    ASSERT_EQ(ta->capacity(), tb->capacity()) << name;
    EXPECT_EQ(ta->size(), tb->size()) << name;
    for (size_t r = 0; r < ta->capacity(); ++r) {
      int64_t id = static_cast<int64_t>(r);
      EXPECT_EQ(ta->is_live(id), tb->is_live(id)) << name << " row " << r;
      EXPECT_EQ(ta->RowHash(id), tb->RowHash(id)) << name << " row " << r;
      for (size_t c = 0; c < ta->schema().num_columns(); ++c) {
        EXPECT_TRUE(ta->ValueAt(id, c) == tb->ValueAt(id, c))
            << name << " row " << r << " col " << c;
      }
    }
  }
}

TEST(CatalogSnapshotTest, RoundTripPreservesRowIdsAndTombstones) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  std::string bytes = EncodeCatalogSnapshot(catalog);

  Catalog loaded;
  Status st = LoadCatalogSnapshot(bytes, &loaded);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ExpectCatalogsEqual(catalog, loaded);

  // The tombstoned row keeps its id and stays erased.
  Table* people = *loaded.GetTable("people");
  Tuple bob({Value::String("bob"), Value::Int(-7), Value::Null(),
             Value::Bool(false)});
  EXPECT_FALSE(people->Contains(bob));
  EXPECT_EQ(people->FindIncludingDeleted(bob), 1);
  // And re-inserting revives the same row id, like in the original.
  auto revived = people->Insert(bob);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->first, 1);
  EXPECT_TRUE(revived->second);

  // TSV rendering (live rows only) matches too.
  EXPECT_EQ(TableToTsv(**catalog.GetTable("edges")),
            TableToTsv(**loaded.GetTable("edges")));
}

TEST(CatalogSnapshotTest, BytesIndependentOfGlobalInternOrder) {
  Catalog a;
  FillTestCatalog(&a);
  std::string first = EncodeCatalogSnapshot(a);
  // Intern unrelated strings into the global dictionary, shifting every
  // global id; snapshot bytes must not change (pool ids are local).
  for (int i = 0; i < 64; ++i) {
    Value::String("unrelated-intern-" + std::to_string(i));
  }
  Catalog b;
  FillTestCatalog(&b);
  EXPECT_EQ(first, EncodeCatalogSnapshot(b));
  EXPECT_EQ(first, EncodeCatalogSnapshot(a));
}

TEST(CatalogSnapshotTest, LoadIntoOccupiedCatalogFails) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  std::string bytes = EncodeCatalogSnapshot(catalog);
  Status st = LoadCatalogSnapshot(bytes, &catalog);
  EXPECT_FALSE(st.ok());
}

TEST(TableRestoreRowTest, DuplicateRowIsCorruption) {
  Table table("t", Schema({{"x", ValueType::kInt}}));
  ASSERT_TRUE(table.RestoreRow(Tuple({Value::Int(1)}), true).ok());
  ASSERT_TRUE(table.RestoreRow(Tuple({Value::Int(2)}), false).ok());
  Status dup = table.RestoreRow(Tuple({Value::Int(1)}), true);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kCorruption);
  EXPECT_EQ(table.capacity(), 2u);
  EXPECT_EQ(table.size(), 1u);  // row 1 restored as a tombstone
  EXPECT_FALSE(table.is_live(1));
}

// ---- Corruption sweeps --------------------------------------------------
//
// Same invariant as the graph-snapshot sweeps in recovery_test: every
// truncation and every bit flip must yield Corruption — never a crash,
// hang, or silently wrong catalog. Run under ASan/UBSan in CI.

TEST(CatalogSnapshotTest, TruncationAtEveryByteIsCorruption) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  std::string bytes = EncodeCatalogSnapshot(catalog);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Catalog loaded;
    Status st = LoadCatalogSnapshot(bytes.substr(0, cut), &loaded);
    ASSERT_FALSE(st.ok()) << "truncation at " << cut << " accepted";
    EXPECT_EQ(st.code(), StatusCode::kCorruption)
        << "truncation at " << cut << ": " << st.ToString();
  }
}

TEST(CatalogSnapshotTest, BitFlipAtEveryByteIsCorruption) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  const std::string bytes = EncodeCatalogSnapshot(catalog);
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ (1 << (i % 8)));
    Catalog loaded;
    Status st = LoadCatalogSnapshot(flipped, &loaded);
    ASSERT_FALSE(st.ok()) << "bit flip at byte " << i << " accepted";
    EXPECT_EQ(st.code(), StatusCode::kCorruption)
        << "bit flip at byte " << i << ": " << st.ToString();
  }
}

// ---- CRC-valid but semantically malformed sections ----------------------
//
// Bit flips are caught by the container CRC; these containers are
// re-checksummed after tampering, so only the section-level validation
// stands between a malicious payload and undefined behavior.

TEST(MalformedSectionTest, ColsDefectsRejected) {
  auto expect_corrupt = [](const std::string& cols_content,
                           const std::vector<std::string>& pool,
                           const char* what) {
    std::string bytes =
        BuildContainer({{"COLS", cols_content}, {"DICT", EncodeDict(pool)}});
    Catalog loaded;
    Status st = LoadCatalogSnapshot(bytes, &loaded);
    EXPECT_FALSE(st.ok()) << what;
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kCorruption) << what << ": "
                                                    << st.ToString();
    }
  };

  // Baseline: a well-formed tiny catalog loads (sanity-check the
  // hand-rolled encoding so the rejections below mean something).
  {
    Tuple row({Value::Int(5)});
    std::string cols;
    PutU64(&cols, 1);  // one table
    PutU64(&cols, 1);  // one row
    PutU32(&cols, 0);  // name "t"
    PutU32(&cols, 1);  // one column
    PutU32(&cols, 1);  // column name "c"
    PutU32(&cols, static_cast<uint32_t>(ValueType::kInt));
    PutU64(&cols, 1);  // live word
    PutU64(&cols, row.Hash());
    PutU64(&cols, 5);  // payload
    cols.push_back(static_cast<char>(ValueType::kInt));
    Pad8(&cols);
    std::string bytes =
        BuildContainer({{"COLS", cols}, {"DICT", EncodeDict({"t", "c"})}});
    Catalog loaded;
    Status st = LoadCatalogSnapshot(bytes, &loaded);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ((*loaded.GetTable("t"))->size(), 1u);

    auto mutate = [&](auto fn, const char* what) {
      std::string c = cols;
      fn(&c);
      expect_corrupt(c, {"t", "c"}, what);
    };
    mutate([](std::string* c) { (*c)[8] = 2; },
           "row count disagrees with arrays");
    mutate([](std::string* c) { (*c)[16] = 9; }, "table name id out of pool");
    mutate([](std::string* c) { (*c)[24] = 9; }, "column name id out of pool");
    mutate([](std::string* c) { (*c)[28] = 77; }, "column type out of range");
    mutate([](std::string* c) { (*c)[32] = 3; },
           "liveness word has spare bits set");
    mutate([](std::string* c) { (*c)[40] ^= 1; }, "row hash mismatch");
    mutate([](std::string* c) { (*c)[56] = 77; }, "cell tag out of range");
    mutate([](std::string* c) {
      (*c)[56] = static_cast<char>(ValueType::kBool);
      (*c)[48] = 2;
    }, "bool payload outside {0,1}");
    mutate([](std::string* c) {
      (*c)[56] = static_cast<char>(ValueType::kString);
      (*c)[48] = 9;
    }, "string id out of pool range");
    mutate([](std::string* c) {
      (*c)[56] = static_cast<char>(ValueType::kNull);
    }, "null cell with nonzero payload");
    mutate([](std::string* c) { c->push_back('\0'); },
           "trailing bytes in COLS");
  }

  // Table count far beyond the payload.
  {
    std::string cols;
    PutU64(&cols, 1u << 20);
    expect_corrupt(cols, {}, "table count exceeds payload");
  }
  // Two tables out of name order (also a duplicate-name guard).
  {
    std::string cols;
    PutU64(&cols, 2);
    for (int i = 0; i < 2; ++i) {
      PutU64(&cols, 0);  // zero rows
      PutU32(&cols, 0);  // both named "t"
      PutU32(&cols, 0);  // zero columns
    }
    expect_corrupt(cols, {"t"}, "tables not sorted by name");
  }
  // Missing DICT entirely.
  {
    std::string cols;
    PutU64(&cols, 0);
    std::string bytes = BuildContainer({{"COLS", cols}});
    Catalog loaded;
    EXPECT_FALSE(LoadCatalogSnapshot(bytes, &loaded).ok());
  }
}

TEST(MalformedSectionTest, GrbnDefectsRejected) {
  // Hand-build a minimal graph: 2 vars (one evidence), 1 weight, 1
  // istrue factor with 1 literal.
  auto build = [](auto mutate) {
    std::string g;
    PutU64(&g, 2);  // variables
    PutU64(&g, 1);  // evidence
    PutU64(&g, 1);  // weights
    PutU64(&g, 1);  // factors
    PutU64(&g, 1);  // literals
    PutU64(&g, 1 | (uint64_t{1} << 32));         // var 1 evidence true
    PutU64(&g, 0x3ff0000000000000ull);           // weight 1.0
    PutU32(&g, 0);                               // desc id
    Pad8(&g);
    g.push_back(0);                              // not fixed
    Pad8(&g);
    g.push_back(0);                              // kIsTrue
    Pad8(&g);
    PutU32(&g, 0);                               // factor weight
    Pad8(&g);
    PutU64(&g, 0);                               // literal offsets
    PutU64(&g, 1);
    PutU64(&g, 0 | (uint64_t{1} << 32));         // literal: var 0 positive
    mutate(&g);
    return BuildContainer({{"GRBN", g}, {"DICT", EncodeDict({"w"})}});
  };

  // Baseline sanity: the unmutated bytes decode.
  {
    auto snap = DecodeGraphSnapshot(build([](std::string*) {}));
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ASSERT_TRUE(snap->has_graph);
    EXPECT_EQ(snap->graph.num_variables(), 2u);
    EXPECT_TRUE(snap->graph.is_evidence(1));
  }
  auto expect_corrupt = [&](auto mutate, const char* what) {
    auto snap = DecodeGraphSnapshot(build(mutate));
    EXPECT_FALSE(snap.ok()) << what;
    if (!snap.ok()) {
      EXPECT_EQ(snap.status().code(), StatusCode::kCorruption)
          << what << ": " << snap.status().ToString();
    }
  };
  expect_corrupt([](std::string* g) { (*g)[40] = 7; },
                 "evidence variable out of range");
  expect_corrupt([](std::string* g) { (*g)[44] = 4; },
                 "evidence word spare bits");
  expect_corrupt([](std::string* g) { (*g)[8] = 3; },
                 "more evidence than variables");
  expect_corrupt([](std::string* g) { (*g)[56] = 9; },
                 "weight desc id out of pool");
  expect_corrupt([](std::string* g) { (*g)[64] = 2; },
                 "weight fixed flag outside {0,1}");
  expect_corrupt([](std::string* g) { (*g)[72] = 9; },
                 "unknown factor function");
  expect_corrupt([](std::string* g) { (*g)[80] = 1; },
                 "factor weight out of range");
  expect_corrupt([](std::string* g) { (*g)[88] = 1; },
                 "literal offsets must start at 0");
  expect_corrupt([](std::string* g) { (*g)[96] = 2; },
                 "final literal offset != literal count");
  expect_corrupt([](std::string* g) { (*g)[104] = 5; },
                 "literal variable out of range");
  expect_corrupt([](std::string* g) { (*g)[109] = 4; },
                 "literal word spare bits");
  expect_corrupt([](std::string* g) { g->push_back('\0'); },
                 "trailing bytes in GRBN");
  expect_corrupt([](std::string* g) { g->pop_back(); }, "truncated literals");
  // GRBN without its DICT.
  {
    std::string g;
    PutU64(&g, 0);
    PutU64(&g, 0);
    PutU64(&g, 0);
    PutU64(&g, 0);
    PutU64(&g, 0);
    PutU64(&g, 0);  // literal_offsets[0]
    auto snap = DecodeGraphSnapshot(BuildContainer({{"GRBN", g}}));
    EXPECT_FALSE(snap.ok());
  }
}

// ---- Text oracle --------------------------------------------------------

TEST(GraphSnapshotFormatTest, TextOracleMatchesBinary) {
  SyntheticGraphOptions options;
  options.num_variables = 20;
  options.factors_per_variable = 2.5;
  options.evidence_fraction = 0.3;
  options.num_weights = 8;
  options.seed = 11;

  GraphSnapshot snap;
  snap.has_graph = true;
  snap.graph = MakeRandomGraph(options);

  // Default is binary: GRBN+DICT sections, no GRPH.
  std::string binary = EncodeGraphSnapshot(snap);
  auto reader = SnapshotReader::Parse(binary);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Has("GRBN"));
  EXPECT_TRUE(reader->Has("DICT"));
  EXPECT_FALSE(reader->Has("GRPH"));

  // text_graph flips to the ddfg oracle format.
  snap.text_graph = true;
  std::string text = EncodeGraphSnapshot(snap);
  auto text_reader = SnapshotReader::Parse(text);
  ASSERT_TRUE(text_reader.ok());
  EXPECT_TRUE(text_reader->Has("GRPH"));
  EXPECT_FALSE(text_reader->Has("GRBN"));

  // Both decode to the same graph, and each remembers its format so
  // decode→encode round-trips are byte-exact.
  auto from_binary = DecodeGraphSnapshot(binary);
  auto from_text = DecodeGraphSnapshot(text);
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  EXPECT_FALSE(from_binary->text_graph);
  EXPECT_TRUE(from_text->text_graph);
  EXPECT_EQ(SerializeGraph(from_binary->graph), SerializeGraph(from_text->graph));
  EXPECT_EQ(SerializeGraph(from_binary->graph), SerializeGraph(snap.graph));
  EXPECT_EQ(EncodeGraphSnapshot(*from_binary), binary);
  EXPECT_EQ(EncodeGraphSnapshot(*from_text), text);
}

// ---- Mapped snapshots ---------------------------------------------------

class MappedSnapshotTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string dir = ::testing::TempDir();
    if (!dir.empty() && dir.back() != '/') dir += '/';
    std::string path = dir + "snapshot_test_" + name;
    std::remove(path.c_str());
    return path;
  }
};

TEST_F(MappedSnapshotTest, ReadsCatalogInPlace) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  std::string path = TempPath("catalog.ddsn");
  ASSERT_TRUE(WriteCatalogSnapshot(catalog, path).ok());

  auto snap = MappedSnapshot::Open(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap->mapped());

  auto pool = snap->Pool();
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  auto tables = snap->Tables(*pool);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->tables.size(), 2u);

  // Views are zero-copy: names point into the mapped file bytes.
  const MappedTableView& edges = tables->tables[0];
  EXPECT_EQ(edges.name, "edges");
  EXPECT_GE(edges.name.data(), snap->bytes().data());
  EXPECT_LT(edges.name.data(), snap->bytes().data() + snap->bytes().size());

  // Spot-check cells against the source table without any load step.
  const Table* src = *catalog.GetTable("edges");
  ASSERT_EQ(edges.num_rows, src->capacity());
  for (size_t r = 0; r < edges.num_rows; ++r) {
    EXPECT_EQ(edges.RowLive(r), src->is_live(static_cast<int64_t>(r)));
    EXPECT_EQ(edges.RowHash(r), src->RowHash(static_cast<int64_t>(r)));
    EXPECT_EQ(edges.CellPayload(0, r),
              src->ValueAt(static_cast<int64_t>(r), 0).payload_bits());
    EXPECT_EQ(static_cast<ValueType>(edges.CellTag(1, r)),
              src->ValueAt(static_cast<int64_t>(r), 1).type());
  }

  // The people table has tombstones and string cells; resolve one
  // through the pool.
  const MappedTableView& people = tables->tables[1];
  EXPECT_EQ(people.name, "people");
  EXPECT_FALSE(people.RowLive(1));
  ASSERT_EQ(static_cast<ValueType>(people.CellTag(0, 0)), ValueType::kString);
  EXPECT_EQ(pool->String(static_cast<uint32_t>(people.CellPayload(0, 0))),
            "ann");
  std::remove(path.c_str());
}

TEST_F(MappedSnapshotTest, ReadsGraphInPlace) {
  SyntheticGraphOptions options;
  options.num_variables = 16;
  options.factors_per_variable = 2.0;
  options.evidence_fraction = 0.25;
  options.num_weights = 5;
  options.seed = 4;

  GraphSnapshot snap;
  snap.has_graph = true;
  snap.graph = MakeRandomGraph(options);
  std::string path = TempPath("graph.ddsn");
  ASSERT_TRUE(WriteGraphSnapshot(snap, path).ok());

  auto mapped = MappedSnapshot::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto pool = mapped->Pool();
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  auto view = mapped->Graph(*pool);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->num_variables, snap.graph.num_variables());
  EXPECT_EQ(view->num_factors, snap.graph.num_factors());
  EXPECT_EQ(view->num_literals, snap.graph.num_edges());

  auto graph = GraphFromBinary(*view, *pool);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(SerializeGraph(*graph), SerializeGraph(snap.graph));
  std::remove(path.c_str());
}

TEST_F(MappedSnapshotTest, MissingFileIsError) {
  auto snap = MappedSnapshot::Open(TempPath("does_not_exist.ddsn"));
  EXPECT_FALSE(snap.ok());
}

TEST_F(MappedSnapshotTest, CorruptionSweepThroughMappedPath) {
  Catalog catalog;
  FillTestCatalog(&catalog);
  const std::string bytes = EncodeCatalogSnapshot(catalog);
  std::string path = TempPath("sweep.ddsn");

  auto write_raw = [&](const std::string& data) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    ASSERT_EQ(std::fclose(f), 0);
  };

  // Every truncation and every bit flip, read back through mmap: Open
  // (container validation) must reject — never crash or accept.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    write_raw(bytes.substr(0, cut));
    auto snap = MappedSnapshot::Open(path);
    ASSERT_FALSE(snap.ok()) << "mapped truncation at " << cut << " accepted";
    EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ (1 << (i % 8)));
    write_raw(flipped);
    auto snap = MappedSnapshot::Open(path);
    ASSERT_FALSE(snap.ok()) << "mapped bit flip at byte " << i << " accepted";
    EXPECT_EQ(snap.status().code(), StatusCode::kCorruption);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dd
