#include <gtest/gtest.h>

#include "factor/graph.h"

namespace dd {
namespace {

TEST(FactorGraphTest, BuildAndSizes) {
  FactorGraph g;
  uint32_t v0 = g.AddVariable();
  uint32_t v1 = g.AddVariable(true, true);
  uint32_t w = g.AddWeight(1.5, false, "feat");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kImply, w, {{v0, true}, {v1, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.num_variables(), 2u);
  EXPECT_EQ(g.num_factors(), 1u);
  EXPECT_EQ(g.num_weights(), 1u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.is_evidence(v0));
  EXPECT_TRUE(g.is_evidence(v1));
  EXPECT_TRUE(g.evidence_value(v1));
  EXPECT_DOUBLE_EQ(g.weight(w).value, 1.5);
}

TEST(FactorGraphTest, InvalidFactorRejected) {
  FactorGraph g;
  uint32_t v = g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "w");
  EXPECT_FALSE(g.AddFactor(FactorFunc::kIsTrue, 99, {{v, true}}).ok());   // bad weight
  EXPECT_FALSE(g.AddFactor(FactorFunc::kIsTrue, w, {{7, true}}).ok());    // bad var
  EXPECT_FALSE(g.AddFactor(FactorFunc::kIsTrue, w, {}).ok());             // empty
  EXPECT_FALSE(g.AddFactor(FactorFunc::kEqual, w, {{v, true}}).ok());     // arity
  EXPECT_FALSE(
      g.AddFactor(FactorFunc::kIsTrue, w, {{v, true}, {v, true}}).ok());  // arity
}

struct FuncCase {
  FactorFunc func;
  std::vector<uint8_t> assignment;
  std::vector<Literal> literals;
  double expected;
};

class FactorFuncTest : public ::testing::TestWithParam<FuncCase> {};

TEST_P(FactorFuncTest, Evaluates) {
  const FuncCase& c = GetParam();
  FactorGraph g;
  for (size_t i = 0; i < c.assignment.size(); ++i) g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "w");
  ASSERT_TRUE(g.AddFactor(c.func, w, c.literals).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_DOUBLE_EQ(g.EvalFactor(0, c.assignment.data()), c.expected)
      << FactorFuncName(c.func);
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, FactorFuncTest,
    ::testing::Values(
        // kIsTrue
        FuncCase{FactorFunc::kIsTrue, {1}, {{0, true}}, 1.0},
        FuncCase{FactorFunc::kIsTrue, {0}, {{0, true}}, 0.0},
        FuncCase{FactorFunc::kIsTrue, {0}, {{0, false}}, 1.0},  // negated literal
        // kAnd
        FuncCase{FactorFunc::kAnd, {1, 1}, {{0, true}, {1, true}}, 1.0},
        FuncCase{FactorFunc::kAnd, {1, 0}, {{0, true}, {1, true}}, 0.0},
        FuncCase{FactorFunc::kAnd, {1, 0}, {{0, true}, {1, false}}, 1.0},
        // kOr
        FuncCase{FactorFunc::kOr, {0, 0}, {{0, true}, {1, true}}, 0.0},
        FuncCase{FactorFunc::kOr, {0, 1}, {{0, true}, {1, true}}, 1.0},
        // kImply: body -> head, last literal is head
        FuncCase{FactorFunc::kImply, {1, 1}, {{0, true}, {1, true}}, 1.0},
        FuncCase{FactorFunc::kImply, {1, 0}, {{0, true}, {1, true}}, 0.0},
        FuncCase{FactorFunc::kImply, {0, 0}, {{0, true}, {1, true}}, 1.0},  // vacuous
        FuncCase{FactorFunc::kImply, {1, 1, 0}, {{0, true}, {1, true}, {2, true}}, 0.0},
        FuncCase{FactorFunc::kImply, {1, 0, 0}, {{0, true}, {1, true}, {2, true}}, 1.0},
        // kEqual
        FuncCase{FactorFunc::kEqual, {1, 1}, {{0, true}, {1, true}}, 1.0},
        FuncCase{FactorFunc::kEqual, {0, 1}, {{0, true}, {1, true}}, 0.0},
        FuncCase{FactorFunc::kEqual, {0, 0}, {{0, true}, {1, true}}, 1.0}));

TEST(FactorGraphTest, PotentialDeltaMatchesBruteForce) {
  // Build a small graph, compare PotentialDelta against LogPotential diff.
  FactorGraph g;
  uint32_t a = g.AddVariable();
  uint32_t b = g.AddVariable();
  uint32_t c = g.AddVariable();
  uint32_t w1 = g.AddWeight(0.7, false, "w1");
  uint32_t w2 = g.AddWeight(-1.3, false, "w2");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kImply, w1, {{a, true}, {b, true}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kAnd, w2, {{b, true}, {c, false}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w1, {{b, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());

  for (int bits = 0; bits < 8; ++bits) {
    uint8_t assign[3] = {static_cast<uint8_t>(bits & 1),
                         static_cast<uint8_t>((bits >> 1) & 1),
                         static_cast<uint8_t>((bits >> 2) & 1)};
    for (uint32_t v : {a, b, c}) {
      uint8_t saved = assign[v];
      assign[v] = 1;
      double lp1 = g.LogPotential(assign);
      assign[v] = 0;
      double lp0 = g.LogPotential(assign);
      assign[v] = saved;
      EXPECT_NEAR(g.PotentialDelta(v, assign), lp1 - lp0, 1e-12);
    }
  }
}

TEST(FactorGraphTest, DuplicateVarInFactorIndexedOnce) {
  FactorGraph g;
  uint32_t v = g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "w");
  // v appears twice in one factor (e.g. Or(v, !v)).
  ASSERT_TRUE(g.AddFactor(FactorFunc::kOr, w, {{v, true}, {v, false}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  size_t count = 0;
  g.var_factors(v, &count);
  EXPECT_EQ(count, 1u);
  // And the delta is 0 (tautology factor).
  uint8_t assign[1] = {0};
  EXPECT_DOUBLE_EQ(g.PotentialDelta(v, assign), 0.0);
}

TEST(FactorGraphTest, VarFactorsAdjacency) {
  FactorGraph g;
  uint32_t a = g.AddVariable();
  uint32_t b = g.AddVariable();
  uint32_t w = g.AddWeight(1.0, false, "w");
  ASSERT_TRUE(g.AddFactor(FactorFunc::kIsTrue, w, {{a, true}}).ok());
  ASSERT_TRUE(g.AddFactor(FactorFunc::kImply, w, {{a, true}, {b, true}}).ok());
  ASSERT_TRUE(g.Finalize().ok());
  size_t count = 0;
  g.var_factors(a, &count);
  EXPECT_EQ(count, 2u);
  g.var_factors(b, &count);
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace dd
